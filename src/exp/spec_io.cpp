#include "exp/spec_io.hpp"

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "exp/jsonish.hpp"

namespace smartexp3::exp {

namespace {

// ---------------------------------------------------------------------------
// Writing (syntax lives in exp/jsonish.hpp; this layer knows the spec keys)
// ---------------------------------------------------------------------------

using SpecWriter = JsonWriter;

/// One run of consecutive-id devices with identical policy/area/schedule —
/// the unit the "device_groups" section serializes. Grouping is purely a
/// compression of the device table; parsing expands it back losslessly.
struct DeviceGroup {
  netsim::DeviceSpec first;
  int count = 1;
};

bool same_group(const netsim::DeviceSpec& a, const netsim::DeviceSpec& b, int offset) {
  return b.id == a.id + offset && b.policy_name == a.policy_name &&
         b.area == a.area && b.join_slot == a.join_slot && b.leave_slot == a.leave_slot;
}

std::vector<DeviceGroup> group_devices(const std::vector<netsim::DeviceSpec>& devices) {
  std::vector<DeviceGroup> groups;
  for (const auto& d : devices) {
    if (!groups.empty() && same_group(groups.back().first, d, groups.back().count)) {
      ++groups.back().count;
    } else {
      groups.push_back({d, 1});
    }
  }
  return groups;
}

}  // namespace

std::string to_spec_text(const ExperimentConfig& config) {
  SpecWriter w;
  w.open_object();
  w.field("spec_version", kSpecVersion);
  w.field("name", config.name);
  w.field("base_seed", config.base_seed);

  w.open_object_for("world");
  w.field("slot_seconds", config.world.slot_seconds);
  w.field("gain_scale_mbps", config.world.gain_scale_mbps);
  w.field("horizon", config.world.horizon);
  w.field("threads", config.world.threads);
  w.close_object();

  w.open_array("networks");
  for (const auto& n : config.networks) {
    w.open_object();
    w.field("id", n.id);
    w.field("type", n.type == netsim::NetworkType::kWifi ? "wifi" : "cellular");
    w.field("capacity_mbps", n.base_capacity_mbps);
    if (!n.label.empty()) w.field("label", n.label);
    if (!n.areas.empty()) w.inline_array("areas", n.areas);
    if (!n.trace.empty()) w.inline_array("trace", n.trace);
    w.close_object();
  }
  w.close_array();

  w.open_array("device_groups");
  for (const auto& g : group_devices(config.devices)) {
    w.open_object();
    w.field("first_id", g.first.id);
    w.field("count", g.count);
    w.field("policy", g.first.policy_name);
    if (g.first.area != 0) w.field("area", g.first.area);
    if (g.first.join_slot != 0) w.field("join_slot", g.first.join_slot);
    if (g.first.leave_slot != -1) w.field("leave_slot", g.first.leave_slot);
    w.close_object();
  }
  w.close_array();

  if (!config.scenario.moves.empty()) {
    w.open_array("moves");
    for (const auto& ev : config.scenario.moves) {
      w.open_object();
      w.field("slot", ev.slot);
      w.field("device", ev.device);
      w.field("area", ev.new_area);
      w.close_object();
    }
    w.close_array();
  }
  if (!config.scenario.capacity_changes.empty()) {
    w.open_array("capacity_changes");
    for (const auto& ev : config.scenario.capacity_changes) {
      w.open_object();
      w.field("slot", ev.slot);
      w.field("network", ev.network);
      w.field("capacity_mbps", ev.new_capacity_mbps);
      w.close_object();
    }
    w.close_array();
  }

  w.open_object_for("share");
  if (config.share == ShareKind::kEqual) {
    w.field("kind", "equal");
  } else {
    w.field("kind", "noisy");
    w.field("device_sigma", config.noisy.device_sigma);
    w.field("noise_rho", config.noisy.noise_rho);
    w.field("noise_sigma", config.noisy.noise_sigma);
    w.field("dip_probability", config.noisy.dip_probability);
    w.field("dip_persistence", config.noisy.dip_persistence);
    w.field("dip_depth", config.noisy.dip_depth);
    w.field("seed", config.noisy.seed);
  }
  w.close_object();

  w.open_object_for("delay");
  switch (config.delay) {
    case DelayKind::kDistribution: w.field("kind", "distribution"); break;
    case DelayKind::kZero: w.field("kind", "zero"); break;
    case DelayKind::kFixed:
      w.field("kind", "fixed");
      w.field("wifi_s", config.fixed_delay_wifi_s);
      w.field("cellular_s", config.fixed_delay_cellular_s);
      break;
  }
  w.close_object();

  w.open_object_for("smart");
  w.field("beta", config.smart.beta);
  w.field("enable_reset", config.smart.enable_reset);
  w.field("enable_switch_back", config.smart.enable_switch_back);
  w.field("enable_greedy", config.smart.enable_greedy);
  w.field("enable_explore_first", config.smart.enable_explore_first);
  w.field("reset_prob_threshold", config.smart.reset_prob_threshold);
  w.field("reset_block_len", config.smart.reset_block_len);
  w.field("drop_fraction", config.smart.drop_fraction);
  w.field("drop_slots", config.smart.drop_slots);
  w.field("switch_back_window", config.smart.switch_back_window);
  w.close_object();

  w.open_object_for("recorder");
  w.field("track_distance", config.recorder.track_distance);
  w.field("track_stability", config.recorder.track_stability);
  w.field("track_def4", config.recorder.track_def4);
  w.field("track_selections", config.recorder.track_selections);
  w.field("epsilon", config.recorder.epsilon);
  if (!config.recorder.groups.empty()) {
    w.open_array("groups");
    for (const auto& group : config.recorder.groups) w.inline_array_element(group);
    w.close_array();
  }
  w.close_object();

  w.close_object();
  std::string text = w.take();
  text += '\n';
  return text;
}

namespace {

// ---------------------------------------------------------------------------
// Conversion: JSON values -> ExperimentConfig, with strict key checking.
// Syntax errors surface from exp/jsonish.hpp; parse_spec_text re-brands them
// as SpecError so callers see one exception type for "bad spec file".
// ---------------------------------------------------------------------------

using Value = JsonValue;

[[noreturn]] void fail_at(const Value& v, const std::string& path,
                          const std::string& what) {
  throw SpecError("spec error at " + path + " (line " + std::to_string(v.line) +
                  "): " + what);
}

const char* type_name(Value::Type t) {
  switch (t) {
    case Value::Type::kBool: return "boolean";
    case Value::Type::kNumber: return "number";
    case Value::Type::kString: return "string";
    case Value::Type::kArray: return "array";
    case Value::Type::kObject: return "object";
  }
  return "value";
}

void require_type(const Value& v, Value::Type t, const std::string& path) {
  if (v.type != t) {
    fail_at(v, path, std::string("expected ") + type_name(t) + ", found " +
                         type_name(v.type));
  }
}

bool as_bool(const Value& v, const std::string& path) {
  require_type(v, Value::Type::kBool, path);
  return v.boolean;
}

double as_double(const Value& v, const std::string& path) {
  require_type(v, Value::Type::kNumber, path);
  return v.number;
}

const std::string& as_string(const Value& v, const std::string& path) {
  require_type(v, Value::Type::kString, path);
  return v.str;
}

long long as_integer(const Value& v, const std::string& path, long long min,
                     long long max) {
  require_type(v, Value::Type::kNumber, path);
  if (!v.integral) fail_at(v, path, "expected an integer, found a fraction");
  if (!v.magnitude_exact ||
      v.magnitude > static_cast<std::uint64_t>(std::numeric_limits<long long>::max())) {
    fail_at(v, path, "integer is too large");
  }
  const long long value = v.negative ? -static_cast<long long>(v.magnitude)
                                     : static_cast<long long>(v.magnitude);
  if (value < min || value > max) {
    fail_at(v, path, "value " + std::to_string(value) + " is outside [" +
                         std::to_string(min) + ", " + std::to_string(max) + "]");
  }
  return value;
}

int as_int(const Value& v, const std::string& path,
           int min = std::numeric_limits<int>::min(),
           int max = std::numeric_limits<int>::max()) {
  return static_cast<int>(as_integer(v, path, min, max));
}

std::uint64_t as_uint64(const Value& v, const std::string& path) {
  require_type(v, Value::Type::kNumber, path);
  if (!v.integral) fail_at(v, path, "expected an integer, found a fraction");
  if (v.negative) fail_at(v, path, "expected a non-negative integer");
  if (!v.magnitude_exact) fail_at(v, path, "integer is too large");
  return v.magnitude;
}

/// Strict object access: every key the spec carries must be consumed, so a
/// typo'd or unsupported key is an error instead of a silent no-op.
class ObjectReader {
 public:
  ObjectReader(const Value& v, std::string path) : value_(v), path_(std::move(path)) {
    require_type(v, Value::Type::kObject, path_);
    consumed_.assign(v.object.size(), false);
  }

  /// The member value, or nullptr when absent (caller keeps the default).
  const Value* find(const char* key) {
    for (std::size_t i = 0; i < value_.object.size(); ++i) {
      if (value_.object[i].first == key) {
        if (consumed_[i]) fail_at(value_.object[i].second, member_path(key), "duplicate key");
        consumed_[i] = true;
        return &value_.object[i].second;
      }
    }
    return nullptr;
  }

  const Value& require(const char* key) {
    const Value* v = find(key);
    if (v == nullptr) fail_at(value_, path_, std::string("missing required key '") + key + "'");
    return *v;
  }

  std::string member_path(const char* key) const { return path_ + "." + key; }

  /// Call after reading every supported key: any key left over is unknown.
  void finish() const {
    for (std::size_t i = 0; i < value_.object.size(); ++i) {
      if (!consumed_[i]) {
        fail_at(value_.object[i].second, path_,
                "unknown key '" + value_.object[i].first + "'");
      }
    }
  }

 private:
  const Value& value_;
  std::string path_;
  std::vector<bool> consumed_;
};

void read_world(const Value& v, netsim::WorldConfig& world, const std::string& path) {
  ObjectReader r(v, path);
  if (const Value* m = r.find("slot_seconds")) world.slot_seconds = as_double(*m, r.member_path("slot_seconds"));
  if (const Value* m = r.find("gain_scale_mbps")) world.gain_scale_mbps = as_double(*m, r.member_path("gain_scale_mbps"));
  if (const Value* m = r.find("horizon")) world.horizon = as_int(*m, r.member_path("horizon"));
  if (const Value* m = r.find("threads")) world.threads = as_int(*m, r.member_path("threads"));
  r.finish();
}

netsim::Network read_network(const Value& v, const std::string& path) {
  ObjectReader r(v, path);
  netsim::Network n;
  n.id = as_int(r.require("id"), r.member_path("id"));
  const Value& type_value = r.require("type");
  const std::string& type = as_string(type_value, r.member_path("type"));
  if (type == "wifi") {
    n.type = netsim::NetworkType::kWifi;
  } else if (type == "cellular") {
    n.type = netsim::NetworkType::kCellular;
  } else {
    fail_at(type_value, r.member_path("type"),
            "expected \"wifi\" or \"cellular\", found \"" + type + "\"");
  }
  n.base_capacity_mbps = as_double(r.require("capacity_mbps"), r.member_path("capacity_mbps"));
  if (const Value* m = r.find("label")) n.label = as_string(*m, r.member_path("label"));
  if (const Value* m = r.find("areas")) {
    require_type(*m, Value::Type::kArray, r.member_path("areas"));
    for (std::size_t i = 0; i < m->array.size(); ++i) {
      n.areas.push_back(as_int(m->array[i], r.member_path("areas") + "[" + std::to_string(i) + "]"));
    }
  }
  if (const Value* m = r.find("trace")) {
    require_type(*m, Value::Type::kArray, r.member_path("trace"));
    n.trace.reserve(m->array.size());
    for (std::size_t i = 0; i < m->array.size(); ++i) {
      n.trace.push_back(as_double(m->array[i], r.member_path("trace") + "[" + std::to_string(i) + "]"));
    }
  }
  r.finish();
  return n;
}

void read_device_group(const Value& v, std::vector<netsim::DeviceSpec>& devices,
                       const std::string& path) {
  ObjectReader r(v, path);
  netsim::DeviceSpec spec;
  spec.id = as_int(r.require("first_id"), r.member_path("first_id"));
  const int count = as_int(r.require("count"), r.member_path("count"), 1, 1 << 24);
  spec.policy_name = as_string(r.require("policy"), r.member_path("policy"));
  if (const Value* m = r.find("area")) spec.area = as_int(*m, r.member_path("area"));
  if (const Value* m = r.find("join_slot")) spec.join_slot = as_int(*m, r.member_path("join_slot"));
  if (const Value* m = r.find("leave_slot")) spec.leave_slot = as_int(*m, r.member_path("leave_slot"));
  r.finish();
  devices.reserve(devices.size() + static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    devices.push_back(spec);
    ++spec.id;
  }
}

void read_share(const Value& v, ExperimentConfig& cfg, const std::string& path) {
  ObjectReader r(v, path);
  const std::string& kind = as_string(r.require("kind"), r.member_path("kind"));
  if (kind == "equal") {
    cfg.share = ShareKind::kEqual;
  } else if (kind == "noisy") {
    cfg.share = ShareKind::kNoisy;
    if (const Value* m = r.find("device_sigma")) cfg.noisy.device_sigma = as_double(*m, r.member_path("device_sigma"));
    if (const Value* m = r.find("noise_rho")) cfg.noisy.noise_rho = as_double(*m, r.member_path("noise_rho"));
    if (const Value* m = r.find("noise_sigma")) cfg.noisy.noise_sigma = as_double(*m, r.member_path("noise_sigma"));
    if (const Value* m = r.find("dip_probability")) cfg.noisy.dip_probability = as_double(*m, r.member_path("dip_probability"));
    if (const Value* m = r.find("dip_persistence")) cfg.noisy.dip_persistence = as_double(*m, r.member_path("dip_persistence"));
    if (const Value* m = r.find("dip_depth")) cfg.noisy.dip_depth = as_double(*m, r.member_path("dip_depth"));
    if (const Value* m = r.find("seed")) cfg.noisy.seed = as_uint64(*m, r.member_path("seed"));
  } else {
    fail_at(v, r.member_path("kind"),
            "expected \"equal\" or \"noisy\", found \"" + kind + "\"");
  }
  r.finish();
}

void read_delay(const Value& v, ExperimentConfig& cfg, const std::string& path) {
  ObjectReader r(v, path);
  const std::string& kind = as_string(r.require("kind"), r.member_path("kind"));
  if (kind == "distribution") {
    cfg.delay = DelayKind::kDistribution;
  } else if (kind == "zero") {
    cfg.delay = DelayKind::kZero;
  } else if (kind == "fixed") {
    cfg.delay = DelayKind::kFixed;
    if (const Value* m = r.find("wifi_s")) cfg.fixed_delay_wifi_s = as_double(*m, r.member_path("wifi_s"));
    if (const Value* m = r.find("cellular_s")) cfg.fixed_delay_cellular_s = as_double(*m, r.member_path("cellular_s"));
  } else {
    fail_at(v, r.member_path("kind"),
            "expected \"distribution\", \"zero\" or \"fixed\", found \"" + kind + "\"");
  }
  r.finish();
}

void read_smart(const Value& v, core::SmartExp3Tunables& smart, const std::string& path) {
  ObjectReader r(v, path);
  if (const Value* m = r.find("beta")) smart.beta = as_double(*m, r.member_path("beta"));
  if (const Value* m = r.find("enable_reset")) smart.enable_reset = as_bool(*m, r.member_path("enable_reset"));
  if (const Value* m = r.find("enable_switch_back")) smart.enable_switch_back = as_bool(*m, r.member_path("enable_switch_back"));
  if (const Value* m = r.find("enable_greedy")) smart.enable_greedy = as_bool(*m, r.member_path("enable_greedy"));
  if (const Value* m = r.find("enable_explore_first")) smart.enable_explore_first = as_bool(*m, r.member_path("enable_explore_first"));
  if (const Value* m = r.find("reset_prob_threshold")) smart.reset_prob_threshold = as_double(*m, r.member_path("reset_prob_threshold"));
  if (const Value* m = r.find("reset_block_len")) smart.reset_block_len = as_int(*m, r.member_path("reset_block_len"));
  if (const Value* m = r.find("drop_fraction")) smart.drop_fraction = as_double(*m, r.member_path("drop_fraction"));
  if (const Value* m = r.find("drop_slots")) smart.drop_slots = as_int(*m, r.member_path("drop_slots"));
  if (const Value* m = r.find("switch_back_window")) smart.switch_back_window = as_int(*m, r.member_path("switch_back_window"));
  r.finish();
}

void read_recorder(const Value& v, metrics::RecorderOptions& rec, const std::string& path) {
  ObjectReader r(v, path);
  if (const Value* m = r.find("track_distance")) rec.track_distance = as_bool(*m, r.member_path("track_distance"));
  if (const Value* m = r.find("track_stability")) rec.track_stability = as_bool(*m, r.member_path("track_stability"));
  if (const Value* m = r.find("track_def4")) rec.track_def4 = as_bool(*m, r.member_path("track_def4"));
  if (const Value* m = r.find("track_selections")) rec.track_selections = as_bool(*m, r.member_path("track_selections"));
  if (const Value* m = r.find("epsilon")) rec.epsilon = as_double(*m, r.member_path("epsilon"));
  if (const Value* m = r.find("groups")) {
    require_type(*m, Value::Type::kArray, r.member_path("groups"));
    for (std::size_t g = 0; g < m->array.size(); ++g) {
      const std::string gpath = r.member_path("groups") + "[" + std::to_string(g) + "]";
      require_type(m->array[g], Value::Type::kArray, gpath);
      std::vector<DeviceId> ids;
      for (std::size_t i = 0; i < m->array[g].array.size(); ++i) {
        ids.push_back(as_int(m->array[g].array[i], gpath + "[" + std::to_string(i) + "]"));
      }
      rec.groups.push_back(std::move(ids));
    }
  }
  r.finish();
}

}  // namespace

ExperimentConfig parse_spec_text(const std::string& text) {
  Value root;
  try {
    root = parse_json(text);
  } catch (const JsonError& e) {
    // "parse error at line N: ..." -> "spec parse error at line N: ...",
    // byte-identical to the messages this parser produced before the JSON
    // layer was split out (tests/test_spec_io.cpp pins them).
    throw SpecError(std::string("spec ") + e.what());
  }
  ObjectReader r(root, "spec");

  if (const Value* m = r.find("spec_version")) {
    const int version = as_int(*m, r.member_path("spec_version"));
    if (version != kSpecVersion) {
      fail_at(*m, r.member_path("spec_version"),
              "unsupported version " + std::to_string(version) + " (this build reads " +
                  std::to_string(kSpecVersion) + ")");
    }
  }

  ExperimentConfig cfg;
  if (const Value* m = r.find("name")) cfg.name = as_string(*m, r.member_path("name"));
  if (const Value* m = r.find("base_seed")) cfg.base_seed = as_uint64(*m, r.member_path("base_seed"));
  if (const Value* m = r.find("world")) read_world(*m, cfg.world, r.member_path("world"));

  {
    const Value& nets = r.require("networks");
    require_type(nets, Value::Type::kArray, r.member_path("networks"));
    for (std::size_t i = 0; i < nets.array.size(); ++i) {
      cfg.networks.push_back(
          read_network(nets.array[i], r.member_path("networks") + "[" + std::to_string(i) + "]"));
    }
  }
  {
    const Value& groups = r.require("device_groups");
    require_type(groups, Value::Type::kArray, r.member_path("device_groups"));
    for (std::size_t i = 0; i < groups.array.size(); ++i) {
      read_device_group(groups.array[i], cfg.devices,
                        r.member_path("device_groups") + "[" + std::to_string(i) + "]");
    }
  }
  if (const Value* m = r.find("moves")) {
    require_type(*m, Value::Type::kArray, r.member_path("moves"));
    for (std::size_t i = 0; i < m->array.size(); ++i) {
      const std::string path = r.member_path("moves") + "[" + std::to_string(i) + "]";
      ObjectReader ev(m->array[i], path);
      cfg.scenario.move(as_int(ev.require("slot"), ev.member_path("slot")),
                        as_int(ev.require("device"), ev.member_path("device")),
                        as_int(ev.require("area"), ev.member_path("area")));
      ev.finish();
    }
  }
  if (const Value* m = r.find("capacity_changes")) {
    require_type(*m, Value::Type::kArray, r.member_path("capacity_changes"));
    for (std::size_t i = 0; i < m->array.size(); ++i) {
      const std::string path = r.member_path("capacity_changes") + "[" + std::to_string(i) + "]";
      ObjectReader ev(m->array[i], path);
      cfg.scenario.set_capacity(as_int(ev.require("slot"), ev.member_path("slot")),
                                as_int(ev.require("network"), ev.member_path("network")),
                                as_double(ev.require("capacity_mbps"), ev.member_path("capacity_mbps")));
      ev.finish();
    }
  }
  if (const Value* m = r.find("share")) read_share(*m, cfg, r.member_path("share"));
  if (const Value* m = r.find("delay")) read_delay(*m, cfg, r.member_path("delay"));
  if (const Value* m = r.find("smart")) read_smart(*m, cfg.smart, r.member_path("smart"));
  if (const Value* m = r.find("recorder")) read_recorder(*m, cfg.recorder, r.member_path("recorder"));
  r.finish();
  return cfg;
}

ExperimentConfig load_spec_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SpecError("cannot read spec file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_spec_text(buffer.str());
}

void save_spec_file(const ExperimentConfig& config, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write spec file '" + path + "'");
  out << to_spec_text(config);
  if (!out) throw std::runtime_error("failed writing spec file '" + path + "'");
}

}  // namespace smartexp3::exp
