#include "exp/spec_io.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace smartexp3::exp {

namespace {

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Shortest decimal form that parses back to exactly the same double — the
/// property the round-trip determinism tests rely on.
std::string fmt_double(double v) {
  if (!std::isfinite(v)) {
    throw std::runtime_error("ScenarioSpec cannot represent non-finite number");
  }
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, result.ptr);
}

std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          out += esc;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Emits the spec with two-space indentation and deterministic key order.
class SpecWriter {
 public:
  std::string take() { return std::move(out_); }

  void open_object() { punctuate(); out_ += '{'; ++depth_; fresh_ = true; }
  void close_object() { --depth_; newline(); out_ += '}'; fresh_ = false; }
  void open_array(const std::string& key) { open_key(key); out_ += '['; ++depth_; fresh_ = true; }
  void close_array() { --depth_; newline(); out_ += ']'; fresh_ = false; }

  void open_key(const std::string& key) {
    punctuate();
    out_ += quote(key);
    out_ += ": ";
  }
  void open_object_for(const std::string& key) { open_key(key); out_ += '{'; ++depth_; fresh_ = true; }

  void field(const std::string& key, const std::string& value) { open_key(key); out_ += quote(value); }
  // Without this overload string literals would convert to bool, not string.
  void field(const std::string& key, const char* value) { field(key, std::string(value)); }
  void field(const std::string& key, double value) { open_key(key); out_ += fmt_double(value); }
  void field(const std::string& key, int value) { open_key(key); out_ += std::to_string(value); }
  void field(const std::string& key, std::uint64_t value) { open_key(key); out_ += std::to_string(value); }
  void field(const std::string& key, bool value) { open_key(key); out_ += value ? "true" : "false"; }

  /// Scalar arrays are emitted on one line ("[4, 7, 22]") — they are the
  /// bulk of a spec with traces and this keeps the files skimmable.
  void inline_array(const std::string& key, const std::vector<int>& values) {
    open_key(key);
    append_inline(values, [](int v) { return std::to_string(v); });
  }
  void inline_array(const std::string& key, const std::vector<double>& values) {
    open_key(key);
    append_inline(values, fmt_double);
  }
  void inline_array_element(const std::vector<int>& values) {
    punctuate();
    append_inline(values, [](int v) { return std::to_string(v); });
  }

 private:
  template <typename T, typename Format>
  void append_inline(const std::vector<T>& values, Format format) {
    out_ += '[';
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out_ += ", ";
      out_ += format(values[i]);
    }
    out_ += ']';
  }

  void newline() {
    out_ += '\n';
    out_.append(static_cast<std::size_t>(depth_) * 2, ' ');
  }
  void punctuate() {
    if (depth_ == 0) return;  // the root value itself
    if (!fresh_) out_ += ',';
    fresh_ = false;
    newline();
  }

  std::string out_;
  int depth_ = 0;
  bool fresh_ = true;  // no element written yet at this depth
};

/// One run of consecutive-id devices with identical policy/area/schedule —
/// the unit the "device_groups" section serializes. Grouping is purely a
/// compression of the device table; parsing expands it back losslessly.
struct DeviceGroup {
  netsim::DeviceSpec first;
  int count = 1;
};

bool same_group(const netsim::DeviceSpec& a, const netsim::DeviceSpec& b, int offset) {
  return b.id == a.id + offset && b.policy_name == a.policy_name &&
         b.area == a.area && b.join_slot == a.join_slot && b.leave_slot == a.leave_slot;
}

std::vector<DeviceGroup> group_devices(const std::vector<netsim::DeviceSpec>& devices) {
  std::vector<DeviceGroup> groups;
  for (const auto& d : devices) {
    if (!groups.empty() && same_group(groups.back().first, d, groups.back().count)) {
      ++groups.back().count;
    } else {
      groups.push_back({d, 1});
    }
  }
  return groups;
}

}  // namespace

std::string to_spec_text(const ExperimentConfig& config) {
  SpecWriter w;
  w.open_object();
  w.field("spec_version", kSpecVersion);
  w.field("name", config.name);
  w.field("base_seed", config.base_seed);

  w.open_object_for("world");
  w.field("slot_seconds", config.world.slot_seconds);
  w.field("gain_scale_mbps", config.world.gain_scale_mbps);
  w.field("horizon", config.world.horizon);
  w.field("threads", config.world.threads);
  w.close_object();

  w.open_array("networks");
  for (const auto& n : config.networks) {
    w.open_object();
    w.field("id", n.id);
    w.field("type", n.type == netsim::NetworkType::kWifi ? "wifi" : "cellular");
    w.field("capacity_mbps", n.base_capacity_mbps);
    if (!n.label.empty()) w.field("label", n.label);
    if (!n.areas.empty()) w.inline_array("areas", n.areas);
    if (!n.trace.empty()) w.inline_array("trace", n.trace);
    w.close_object();
  }
  w.close_array();

  w.open_array("device_groups");
  for (const auto& g : group_devices(config.devices)) {
    w.open_object();
    w.field("first_id", g.first.id);
    w.field("count", g.count);
    w.field("policy", g.first.policy_name);
    if (g.first.area != 0) w.field("area", g.first.area);
    if (g.first.join_slot != 0) w.field("join_slot", g.first.join_slot);
    if (g.first.leave_slot != -1) w.field("leave_slot", g.first.leave_slot);
    w.close_object();
  }
  w.close_array();

  if (!config.scenario.moves.empty()) {
    w.open_array("moves");
    for (const auto& ev : config.scenario.moves) {
      w.open_object();
      w.field("slot", ev.slot);
      w.field("device", ev.device);
      w.field("area", ev.new_area);
      w.close_object();
    }
    w.close_array();
  }
  if (!config.scenario.capacity_changes.empty()) {
    w.open_array("capacity_changes");
    for (const auto& ev : config.scenario.capacity_changes) {
      w.open_object();
      w.field("slot", ev.slot);
      w.field("network", ev.network);
      w.field("capacity_mbps", ev.new_capacity_mbps);
      w.close_object();
    }
    w.close_array();
  }

  w.open_object_for("share");
  if (config.share == ShareKind::kEqual) {
    w.field("kind", "equal");
  } else {
    w.field("kind", "noisy");
    w.field("device_sigma", config.noisy.device_sigma);
    w.field("noise_rho", config.noisy.noise_rho);
    w.field("noise_sigma", config.noisy.noise_sigma);
    w.field("dip_probability", config.noisy.dip_probability);
    w.field("dip_persistence", config.noisy.dip_persistence);
    w.field("dip_depth", config.noisy.dip_depth);
    w.field("seed", config.noisy.seed);
  }
  w.close_object();

  w.open_object_for("delay");
  switch (config.delay) {
    case DelayKind::kDistribution: w.field("kind", "distribution"); break;
    case DelayKind::kZero: w.field("kind", "zero"); break;
    case DelayKind::kFixed:
      w.field("kind", "fixed");
      w.field("wifi_s", config.fixed_delay_wifi_s);
      w.field("cellular_s", config.fixed_delay_cellular_s);
      break;
  }
  w.close_object();

  w.open_object_for("smart");
  w.field("beta", config.smart.beta);
  w.field("enable_reset", config.smart.enable_reset);
  w.field("enable_switch_back", config.smart.enable_switch_back);
  w.field("enable_greedy", config.smart.enable_greedy);
  w.field("enable_explore_first", config.smart.enable_explore_first);
  w.field("reset_prob_threshold", config.smart.reset_prob_threshold);
  w.field("reset_block_len", config.smart.reset_block_len);
  w.field("drop_fraction", config.smart.drop_fraction);
  w.field("drop_slots", config.smart.drop_slots);
  w.field("switch_back_window", config.smart.switch_back_window);
  w.close_object();

  w.open_object_for("recorder");
  w.field("track_distance", config.recorder.track_distance);
  w.field("track_stability", config.recorder.track_stability);
  w.field("track_def4", config.recorder.track_def4);
  w.field("track_selections", config.recorder.track_selections);
  w.field("epsilon", config.recorder.epsilon);
  if (!config.recorder.groups.empty()) {
    w.open_array("groups");
    for (const auto& group : config.recorder.groups) w.inline_array_element(group);
    w.close_array();
  }
  w.close_object();

  w.close_object();
  std::string text = w.take();
  text += '\n';
  return text;
}

namespace {

// ---------------------------------------------------------------------------
// Parsing: a strict JSON-subset recursive-descent parser with line numbers
// ---------------------------------------------------------------------------

struct Value {
  enum class Type { kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kBool;
  int line = 1;  // 1-based line where the value starts, for error messages

  bool boolean = false;
  double number = 0.0;
  bool integral = false;   // the literal had no fraction/exponent part
  bool negative = false;   // literal began with '-'
  std::uint64_t magnitude = 0;  // |value| when integral (saturated on overflow)
  bool magnitude_exact = false;

  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after the spec object");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw SpecError("spec parse error at line " + std::to_string(line_) + ": " + what);
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input (truncated spec?)");
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    if (c == '\n') ++line_;
    return c;
  }
  void expect(char c) {
    const char got = take();
    if (got != c) {
      fail(std::string("expected '") + c + "', found '" + got + "'");
    }
  }
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
      if (c == '\n') ++line_;
    }
  }

  Value parse_value() {
    skip_ws();
    Value v;
    v.line = line_;
    const char c = peek();
    if (c == '{') { parse_object(v); return v; }
    if (c == '[') { parse_array(v); return v; }
    if (c == '"') { v.type = Value::Type::kString; v.str = parse_string(); return v; }
    if (c == 't' || c == 'f') { parse_bool(v); return v; }
    if (c == '-' || (c >= '0' && c <= '9')) { parse_number(v); return v; }
    if (c == 'n') fail("null is not used by the spec format");
    fail(std::string("unexpected character '") + c + "'");
  }

  void parse_object(Value& v) {
    v.type = Value::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') { take(); return; }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      for (const auto& [existing, unused] : v.object) {
        if (existing == key) fail("duplicate key '" + key + "' in object");
      }
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') return;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  void parse_array(Value& v) {
    v.type = Value::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') { take(); return; }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') { out += c; continue; }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          if (code >= 0xd800 && code <= 0xdfff) fail("surrogate escapes are not supported");
          // Encode the code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("invalid escape sequence");
      }
    }
  }

  void parse_bool(Value& v) {
    v.type = Value::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("expected 'true' or 'false'");
    }
  }

  void parse_number(Value& v) {
    v.type = Value::Type::kNumber;
    const std::size_t start = pos_;
    if (peek() == '-') { v.negative = true; take(); }
    if (!(peek() >= '0' && peek() <= '9')) fail("malformed number");
    if (peek() == '0' && pos_ + 1 < text_.size() && text_[pos_ + 1] >= '0' &&
        text_[pos_ + 1] <= '9') {
      fail("malformed number: leading zeros are not allowed");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    const std::size_t int_end = pos_;
    v.integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      v.integral = false;
      ++pos_;
      if (!(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')) {
        fail("malformed number: digits must follow '.'");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      v.integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (!(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')) {
        fail("malformed number: digits must follow the exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    const auto result =
        std::from_chars(token.data(), token.data() + token.size(), v.number);
    if (result.ec != std::errc() || result.ptr != token.data() + token.size()) {
      fail("malformed number '" + token + "'");
    }
    if (v.integral) {
      const std::size_t mag_start = start + (v.negative ? 1 : 0);
      const auto mag = std::from_chars(text_.data() + mag_start,
                                       text_.data() + int_end, v.magnitude);
      v.magnitude_exact = mag.ec == std::errc();
      if (!v.magnitude_exact) v.magnitude = std::numeric_limits<std::uint64_t>::max();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

// ---------------------------------------------------------------------------
// Conversion: JSON values -> ExperimentConfig, with strict key checking
// ---------------------------------------------------------------------------

[[noreturn]] void fail_at(const Value& v, const std::string& path,
                          const std::string& what) {
  throw SpecError("spec error at " + path + " (line " + std::to_string(v.line) +
                  "): " + what);
}

const char* type_name(Value::Type t) {
  switch (t) {
    case Value::Type::kBool: return "boolean";
    case Value::Type::kNumber: return "number";
    case Value::Type::kString: return "string";
    case Value::Type::kArray: return "array";
    case Value::Type::kObject: return "object";
  }
  return "value";
}

void require_type(const Value& v, Value::Type t, const std::string& path) {
  if (v.type != t) {
    fail_at(v, path, std::string("expected ") + type_name(t) + ", found " +
                         type_name(v.type));
  }
}

bool as_bool(const Value& v, const std::string& path) {
  require_type(v, Value::Type::kBool, path);
  return v.boolean;
}

double as_double(const Value& v, const std::string& path) {
  require_type(v, Value::Type::kNumber, path);
  return v.number;
}

const std::string& as_string(const Value& v, const std::string& path) {
  require_type(v, Value::Type::kString, path);
  return v.str;
}

long long as_integer(const Value& v, const std::string& path, long long min,
                     long long max) {
  require_type(v, Value::Type::kNumber, path);
  if (!v.integral) fail_at(v, path, "expected an integer, found a fraction");
  if (!v.magnitude_exact ||
      v.magnitude > static_cast<std::uint64_t>(std::numeric_limits<long long>::max())) {
    fail_at(v, path, "integer is too large");
  }
  const long long value = v.negative ? -static_cast<long long>(v.magnitude)
                                     : static_cast<long long>(v.magnitude);
  if (value < min || value > max) {
    fail_at(v, path, "value " + std::to_string(value) + " is outside [" +
                         std::to_string(min) + ", " + std::to_string(max) + "]");
  }
  return value;
}

int as_int(const Value& v, const std::string& path,
           int min = std::numeric_limits<int>::min(),
           int max = std::numeric_limits<int>::max()) {
  return static_cast<int>(as_integer(v, path, min, max));
}

std::uint64_t as_uint64(const Value& v, const std::string& path) {
  require_type(v, Value::Type::kNumber, path);
  if (!v.integral) fail_at(v, path, "expected an integer, found a fraction");
  if (v.negative) fail_at(v, path, "expected a non-negative integer");
  if (!v.magnitude_exact) fail_at(v, path, "integer is too large");
  return v.magnitude;
}

/// Strict object access: every key the spec carries must be consumed, so a
/// typo'd or unsupported key is an error instead of a silent no-op.
class ObjectReader {
 public:
  ObjectReader(const Value& v, std::string path) : value_(v), path_(std::move(path)) {
    require_type(v, Value::Type::kObject, path_);
    consumed_.assign(v.object.size(), false);
  }

  /// The member value, or nullptr when absent (caller keeps the default).
  const Value* find(const char* key) {
    for (std::size_t i = 0; i < value_.object.size(); ++i) {
      if (value_.object[i].first == key) {
        if (consumed_[i]) fail_at(value_.object[i].second, member_path(key), "duplicate key");
        consumed_[i] = true;
        return &value_.object[i].second;
      }
    }
    return nullptr;
  }

  const Value& require(const char* key) {
    const Value* v = find(key);
    if (v == nullptr) fail_at(value_, path_, std::string("missing required key '") + key + "'");
    return *v;
  }

  std::string member_path(const char* key) const { return path_ + "." + key; }

  /// Call after reading every supported key: any key left over is unknown.
  void finish() const {
    for (std::size_t i = 0; i < value_.object.size(); ++i) {
      if (!consumed_[i]) {
        fail_at(value_.object[i].second, path_,
                "unknown key '" + value_.object[i].first + "'");
      }
    }
  }

 private:
  const Value& value_;
  std::string path_;
  std::vector<bool> consumed_;
};

void read_world(const Value& v, netsim::WorldConfig& world, const std::string& path) {
  ObjectReader r(v, path);
  if (const Value* m = r.find("slot_seconds")) world.slot_seconds = as_double(*m, r.member_path("slot_seconds"));
  if (const Value* m = r.find("gain_scale_mbps")) world.gain_scale_mbps = as_double(*m, r.member_path("gain_scale_mbps"));
  if (const Value* m = r.find("horizon")) world.horizon = as_int(*m, r.member_path("horizon"));
  if (const Value* m = r.find("threads")) world.threads = as_int(*m, r.member_path("threads"));
  r.finish();
}

netsim::Network read_network(const Value& v, const std::string& path) {
  ObjectReader r(v, path);
  netsim::Network n;
  n.id = as_int(r.require("id"), r.member_path("id"));
  const Value& type_value = r.require("type");
  const std::string& type = as_string(type_value, r.member_path("type"));
  if (type == "wifi") {
    n.type = netsim::NetworkType::kWifi;
  } else if (type == "cellular") {
    n.type = netsim::NetworkType::kCellular;
  } else {
    fail_at(type_value, r.member_path("type"),
            "expected \"wifi\" or \"cellular\", found \"" + type + "\"");
  }
  n.base_capacity_mbps = as_double(r.require("capacity_mbps"), r.member_path("capacity_mbps"));
  if (const Value* m = r.find("label")) n.label = as_string(*m, r.member_path("label"));
  if (const Value* m = r.find("areas")) {
    require_type(*m, Value::Type::kArray, r.member_path("areas"));
    for (std::size_t i = 0; i < m->array.size(); ++i) {
      n.areas.push_back(as_int(m->array[i], r.member_path("areas") + "[" + std::to_string(i) + "]"));
    }
  }
  if (const Value* m = r.find("trace")) {
    require_type(*m, Value::Type::kArray, r.member_path("trace"));
    n.trace.reserve(m->array.size());
    for (std::size_t i = 0; i < m->array.size(); ++i) {
      n.trace.push_back(as_double(m->array[i], r.member_path("trace") + "[" + std::to_string(i) + "]"));
    }
  }
  r.finish();
  return n;
}

void read_device_group(const Value& v, std::vector<netsim::DeviceSpec>& devices,
                       const std::string& path) {
  ObjectReader r(v, path);
  netsim::DeviceSpec spec;
  spec.id = as_int(r.require("first_id"), r.member_path("first_id"));
  const int count = as_int(r.require("count"), r.member_path("count"), 1, 1 << 24);
  spec.policy_name = as_string(r.require("policy"), r.member_path("policy"));
  if (const Value* m = r.find("area")) spec.area = as_int(*m, r.member_path("area"));
  if (const Value* m = r.find("join_slot")) spec.join_slot = as_int(*m, r.member_path("join_slot"));
  if (const Value* m = r.find("leave_slot")) spec.leave_slot = as_int(*m, r.member_path("leave_slot"));
  r.finish();
  devices.reserve(devices.size() + static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    devices.push_back(spec);
    ++spec.id;
  }
}

void read_share(const Value& v, ExperimentConfig& cfg, const std::string& path) {
  ObjectReader r(v, path);
  const std::string& kind = as_string(r.require("kind"), r.member_path("kind"));
  if (kind == "equal") {
    cfg.share = ShareKind::kEqual;
  } else if (kind == "noisy") {
    cfg.share = ShareKind::kNoisy;
    if (const Value* m = r.find("device_sigma")) cfg.noisy.device_sigma = as_double(*m, r.member_path("device_sigma"));
    if (const Value* m = r.find("noise_rho")) cfg.noisy.noise_rho = as_double(*m, r.member_path("noise_rho"));
    if (const Value* m = r.find("noise_sigma")) cfg.noisy.noise_sigma = as_double(*m, r.member_path("noise_sigma"));
    if (const Value* m = r.find("dip_probability")) cfg.noisy.dip_probability = as_double(*m, r.member_path("dip_probability"));
    if (const Value* m = r.find("dip_persistence")) cfg.noisy.dip_persistence = as_double(*m, r.member_path("dip_persistence"));
    if (const Value* m = r.find("dip_depth")) cfg.noisy.dip_depth = as_double(*m, r.member_path("dip_depth"));
    if (const Value* m = r.find("seed")) cfg.noisy.seed = as_uint64(*m, r.member_path("seed"));
  } else {
    fail_at(v, r.member_path("kind"),
            "expected \"equal\" or \"noisy\", found \"" + kind + "\"");
  }
  r.finish();
}

void read_delay(const Value& v, ExperimentConfig& cfg, const std::string& path) {
  ObjectReader r(v, path);
  const std::string& kind = as_string(r.require("kind"), r.member_path("kind"));
  if (kind == "distribution") {
    cfg.delay = DelayKind::kDistribution;
  } else if (kind == "zero") {
    cfg.delay = DelayKind::kZero;
  } else if (kind == "fixed") {
    cfg.delay = DelayKind::kFixed;
    if (const Value* m = r.find("wifi_s")) cfg.fixed_delay_wifi_s = as_double(*m, r.member_path("wifi_s"));
    if (const Value* m = r.find("cellular_s")) cfg.fixed_delay_cellular_s = as_double(*m, r.member_path("cellular_s"));
  } else {
    fail_at(v, r.member_path("kind"),
            "expected \"distribution\", \"zero\" or \"fixed\", found \"" + kind + "\"");
  }
  r.finish();
}

void read_smart(const Value& v, core::SmartExp3Tunables& smart, const std::string& path) {
  ObjectReader r(v, path);
  if (const Value* m = r.find("beta")) smart.beta = as_double(*m, r.member_path("beta"));
  if (const Value* m = r.find("enable_reset")) smart.enable_reset = as_bool(*m, r.member_path("enable_reset"));
  if (const Value* m = r.find("enable_switch_back")) smart.enable_switch_back = as_bool(*m, r.member_path("enable_switch_back"));
  if (const Value* m = r.find("enable_greedy")) smart.enable_greedy = as_bool(*m, r.member_path("enable_greedy"));
  if (const Value* m = r.find("enable_explore_first")) smart.enable_explore_first = as_bool(*m, r.member_path("enable_explore_first"));
  if (const Value* m = r.find("reset_prob_threshold")) smart.reset_prob_threshold = as_double(*m, r.member_path("reset_prob_threshold"));
  if (const Value* m = r.find("reset_block_len")) smart.reset_block_len = as_int(*m, r.member_path("reset_block_len"));
  if (const Value* m = r.find("drop_fraction")) smart.drop_fraction = as_double(*m, r.member_path("drop_fraction"));
  if (const Value* m = r.find("drop_slots")) smart.drop_slots = as_int(*m, r.member_path("drop_slots"));
  if (const Value* m = r.find("switch_back_window")) smart.switch_back_window = as_int(*m, r.member_path("switch_back_window"));
  r.finish();
}

void read_recorder(const Value& v, metrics::RecorderOptions& rec, const std::string& path) {
  ObjectReader r(v, path);
  if (const Value* m = r.find("track_distance")) rec.track_distance = as_bool(*m, r.member_path("track_distance"));
  if (const Value* m = r.find("track_stability")) rec.track_stability = as_bool(*m, r.member_path("track_stability"));
  if (const Value* m = r.find("track_def4")) rec.track_def4 = as_bool(*m, r.member_path("track_def4"));
  if (const Value* m = r.find("track_selections")) rec.track_selections = as_bool(*m, r.member_path("track_selections"));
  if (const Value* m = r.find("epsilon")) rec.epsilon = as_double(*m, r.member_path("epsilon"));
  if (const Value* m = r.find("groups")) {
    require_type(*m, Value::Type::kArray, r.member_path("groups"));
    for (std::size_t g = 0; g < m->array.size(); ++g) {
      const std::string gpath = r.member_path("groups") + "[" + std::to_string(g) + "]";
      require_type(m->array[g], Value::Type::kArray, gpath);
      std::vector<DeviceId> ids;
      for (std::size_t i = 0; i < m->array[g].array.size(); ++i) {
        ids.push_back(as_int(m->array[g].array[i], gpath + "[" + std::to_string(i) + "]"));
      }
      rec.groups.push_back(std::move(ids));
    }
  }
  r.finish();
}

}  // namespace

ExperimentConfig parse_spec_text(const std::string& text) {
  const Value root = JsonParser(text).parse();
  ObjectReader r(root, "spec");

  if (const Value* m = r.find("spec_version")) {
    const int version = as_int(*m, r.member_path("spec_version"));
    if (version != kSpecVersion) {
      fail_at(*m, r.member_path("spec_version"),
              "unsupported version " + std::to_string(version) + " (this build reads " +
                  std::to_string(kSpecVersion) + ")");
    }
  }

  ExperimentConfig cfg;
  if (const Value* m = r.find("name")) cfg.name = as_string(*m, r.member_path("name"));
  if (const Value* m = r.find("base_seed")) cfg.base_seed = as_uint64(*m, r.member_path("base_seed"));
  if (const Value* m = r.find("world")) read_world(*m, cfg.world, r.member_path("world"));

  {
    const Value& nets = r.require("networks");
    require_type(nets, Value::Type::kArray, r.member_path("networks"));
    for (std::size_t i = 0; i < nets.array.size(); ++i) {
      cfg.networks.push_back(
          read_network(nets.array[i], r.member_path("networks") + "[" + std::to_string(i) + "]"));
    }
  }
  {
    const Value& groups = r.require("device_groups");
    require_type(groups, Value::Type::kArray, r.member_path("device_groups"));
    for (std::size_t i = 0; i < groups.array.size(); ++i) {
      read_device_group(groups.array[i], cfg.devices,
                        r.member_path("device_groups") + "[" + std::to_string(i) + "]");
    }
  }
  if (const Value* m = r.find("moves")) {
    require_type(*m, Value::Type::kArray, r.member_path("moves"));
    for (std::size_t i = 0; i < m->array.size(); ++i) {
      const std::string path = r.member_path("moves") + "[" + std::to_string(i) + "]";
      ObjectReader ev(m->array[i], path);
      cfg.scenario.move(as_int(ev.require("slot"), ev.member_path("slot")),
                        as_int(ev.require("device"), ev.member_path("device")),
                        as_int(ev.require("area"), ev.member_path("area")));
      ev.finish();
    }
  }
  if (const Value* m = r.find("capacity_changes")) {
    require_type(*m, Value::Type::kArray, r.member_path("capacity_changes"));
    for (std::size_t i = 0; i < m->array.size(); ++i) {
      const std::string path = r.member_path("capacity_changes") + "[" + std::to_string(i) + "]";
      ObjectReader ev(m->array[i], path);
      cfg.scenario.set_capacity(as_int(ev.require("slot"), ev.member_path("slot")),
                                as_int(ev.require("network"), ev.member_path("network")),
                                as_double(ev.require("capacity_mbps"), ev.member_path("capacity_mbps")));
      ev.finish();
    }
  }
  if (const Value* m = r.find("share")) read_share(*m, cfg, r.member_path("share"));
  if (const Value* m = r.find("delay")) read_delay(*m, cfg, r.member_path("delay"));
  if (const Value* m = r.find("smart")) read_smart(*m, cfg.smart, r.member_path("smart"));
  if (const Value* m = r.find("recorder")) read_recorder(*m, cfg.recorder, r.member_path("recorder"));
  r.finish();
  return cfg;
}

ExperimentConfig load_spec_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SpecError("cannot read spec file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_spec_text(buffer.str());
}

void save_spec_file(const ExperimentConfig& config, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write spec file '" + path + "'");
  out << to_spec_text(config);
  if (!out) throw std::runtime_error("failed writing spec file '" + path + "'");
}

}  // namespace smartexp3::exp
