// The setting registry: every canonical scenario of the paper's evaluation
// (plus the channel-selection extension) behind one name-based doorway with
// typed parameter overrides.
//
// This is the single public entry point for obtaining canonical
// ExperimentConfigs — the CLI (`netsel_sim --setting`), every bench binary
// and the examples all resolve settings here. The raw C++ builders in
// exp/settings.hpp are an implementation detail of this registry (and of the
// white-box tests that pin their shapes).
//
//   auto cfg = exp::make_setting("setting1");                      // defaults
//   auto cfg = exp::make_setting("scalability", {.policy = "exp3",
//                                                .devices = 40,
//                                                .networks = 5});
//
// Unsupported overrides are errors, not silent no-ops: asking for
// `.devices` on a setting whose device count is part of the scenario throws
// with a message naming the setting and the offending parameter.
#pragma once

#include <string>
#include <vector>

#include "exp/config.hpp"

namespace smartexp3::exp {

/// Typed overrides accepted by make_setting. Fields left at their defaults
/// keep the setting's canonical value; which fields a given setting honours
/// is listed in its catalog summary (and enforced — see above).
struct SettingParams {
  std::string policy;                   ///< "" = the setting's default policy
  int devices = -1;                     ///< device count (static/scalability/channel)
  Slot horizon = -1;                    ///< horizon override in slots (any setting)
  int networks = -1;                    ///< number of networks k (scalability)
  int n_smart = -1;                     ///< smart-device count (greedy_mix)
  int trace_slots = -1;                 ///< synthetic trace length (trace1..4)
  std::vector<std::string> policy_mix;  ///< per-device policies (controlled)
};

/// One registry entry, as enumerated by `netsel_sim --list`.
struct SettingInfo {
  std::string name;            ///< canonical name ("setting1", "trace3", ...)
  std::string summary;         ///< one-line description incl. accepted overrides
  std::string default_policy;  ///< policy used when SettingParams::policy is ""
};

/// The full catalog, in the paper's presentation order.
const std::vector<SettingInfo>& setting_catalog();

/// Just the canonical names, in catalog order.
std::vector<std::string> setting_names();

bool is_valid_setting_name(const std::string& name);

/// Build the named setting with the given overrides. Throws
/// std::invalid_argument on unknown names, on overrides the setting does not
/// accept, and on out-of-range override values.
ExperimentConfig make_setting(const std::string& name,
                              const SettingParams& params = {});

}  // namespace smartexp3::exp
