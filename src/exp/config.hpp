// A fully self-contained description of one experiment: world, networks,
// devices (with their policies by name), scenario events, sharing/delay
// models and recorder options. ExperimentConfig values are cheap to copy, so
// the multi-run executor can stamp out per-run worlds with per-run seeds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/smart_exp3.hpp"
#include "metrics/recorder.hpp"
#include "netsim/bandwidth_model.hpp"
#include "netsim/network.hpp"
#include "netsim/scenario.hpp"
#include "netsim/world.hpp"

namespace smartexp3::exp {

enum class ShareKind { kEqual, kNoisy };
enum class DelayKind { kDistribution, kZero, kFixed };

struct ExperimentConfig {
  std::string name;
  netsim::WorldConfig world;
  std::vector<netsim::Network> networks;
  std::vector<netsim::DeviceSpec> devices;
  netsim::Scenario scenario;

  ShareKind share = ShareKind::kEqual;
  netsim::NoisyShareModel::Params noisy;

  DelayKind delay = DelayKind::kDistribution;
  double fixed_delay_wifi_s = 2.0;
  double fixed_delay_cellular_s = 5.0;

  core::SmartExp3Tunables smart;
  metrics::RecorderOptions recorder;

  std::uint64_t base_seed = 42;

  /// Per-network base capacities in id order (used by the centralized
  /// coordinator and the Nash machinery).
  std::vector<double> capacities() const {
    std::vector<double> caps;
    caps.reserve(networks.size());
    for (const auto& n : networks) caps.push_back(n.base_capacity_mbps);
    return caps;
  }

  double aggregate_capacity() const {
    double total = 0.0;
    for (const auto& n : networks) total += n.base_capacity_mbps;
    return total;
  }

  /// Set every device's policy.
  ExperimentConfig& with_policy(const std::string& policy_name) {
    for (auto& d : devices) d.policy_name = policy_name;
    return *this;
  }
};

}  // namespace smartexp3::exp
