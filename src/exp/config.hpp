// A fully self-contained, value-typed description of one experiment: world,
// networks, devices (with their policies by name), scenario events,
// sharing/delay models and recorder options. ExperimentConfig values are
// cheap to copy, so the multi-run executor can stamp out per-run worlds with
// per-run seeds — and they round-trip losslessly through the ScenarioSpec
// text format (exp/spec_io.hpp), so any experiment can be exported, edited
// and re-run without recompiling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/smart_exp3.hpp"
#include "metrics/recorder.hpp"
#include "netsim/bandwidth_model.hpp"
#include "netsim/network.hpp"
#include "netsim/scenario.hpp"
#include "netsim/world.hpp"

namespace smartexp3::exp {

enum class ShareKind { kEqual, kNoisy };
enum class DelayKind { kDistribution, kZero, kFixed };

struct ExperimentConfig {
  std::string name;
  netsim::WorldConfig world;
  std::vector<netsim::Network> networks;
  std::vector<netsim::DeviceSpec> devices;
  netsim::Scenario scenario;

  ShareKind share = ShareKind::kEqual;
  netsim::NoisyShareModel::Params noisy;

  DelayKind delay = DelayKind::kDistribution;
  double fixed_delay_wifi_s = 2.0;
  double fixed_delay_cellular_s = 5.0;

  core::SmartExp3Tunables smart;
  metrics::RecorderOptions recorder;

  std::uint64_t base_seed = 42;

  /// Per-network base capacities in id order (used by the centralized
  /// coordinator and the Nash machinery). Allocates a fresh vector; hot
  /// callers use capacities_into and the multi-run executor computes the
  /// vector once per run_many call, not per run.
  std::vector<double> capacities() const;

  /// Allocation-free variant: fills `out` (cleared first) with the
  /// per-network base capacities; no allocation once `out` has capacity for
  /// the network count.
  void capacities_into(std::vector<double>& out) const;

  double aggregate_capacity() const {
    double total = 0.0;
    for (const auto& n : networks) total += n.base_capacity_mbps;
    return total;
  }

  /// Set every device's policy.
  ExperimentConfig& with_policy(const std::string& policy_name) {
    for (auto& d : devices) d.policy_name = policy_name;
    return *this;
  }

  /// Check the config for mistakes a World would either reject with a less
  /// helpful message or silently mis-simulate: non-contiguous network ids,
  /// empty networks, negative capacities, duplicate device ids, unknown
  /// policy names, leave-before-join schedules, moves or initial placements
  /// into areas no network covers, events referencing unknown devices or
  /// networks, and out-of-range model parameters. Returns one actionable
  /// message per problem; empty means the config is sound.
  std::vector<std::string> validate() const;

  /// Throw std::invalid_argument with every validate() message if the
  /// config is unsound. Called by exp::build_world and the netsel_sim CLI.
  void validate_or_throw() const;
};

}  // namespace smartexp3::exp
