#include "util/failpoint.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace smartexp3::util {

namespace detail {
std::atomic<int> g_armed{0};
}  // namespace detail

namespace {

/// SplitMix64: tiny, full-period, and good enough to decide coin flips. Kept
/// local so the registry has no dependency on stats/ (which sits above util
/// in the layer order).
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

struct Site {
  enum class Kind { kOnce, kEveryNth, kProbability };
  std::string mode_text;
  Kind kind = Kind::kOnce;
  std::uint64_t n = 1;       ///< once@N target / 1inN period
  double p = 0.0;            ///< probability per evaluation
  std::uint64_t rng = 0;     ///< SplitMix64 state (probability mode)
  std::uint64_t evals = 0;
  std::uint64_t fires = 0;
  bool consumed = false;     ///< a one-shot already fired
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, Site> sites;
};

Registry& registry() {
  static Registry r;  // function-local: immune to static-init order
  return r;
}

bool valid_site_name(const std::string& site) {
  if (site.empty() || site.size() > 128) return false;
  for (const char c : site) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::uint64_t parse_u64(const std::string& text, bool* ok) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  *ok = end != text.c_str() && *end == '\0' && errno != ERANGE && !text.empty();
  return static_cast<std::uint64_t>(v);
}

/// Parse a mode spec into a Site (counters zeroed, RNG unseeded). Throws
/// FailpointError with the offending text on anything outside the grammar.
Site parse_mode(const std::string& site, const std::string& mode) {
  Site s;
  s.mode_text = mode;
  bool ok = false;
  if (mode == "once") {
    s.kind = Site::Kind::kOnce;
    s.n = 1;
    return s;
  }
  if (mode.rfind("once@", 0) == 0) {
    s.kind = Site::Kind::kOnce;
    s.n = parse_u64(mode.substr(5), &ok);
    if (!ok || s.n < 1) {
      throw FailpointError("failpoint '" + site + "': bad one-shot mode '" +
                           mode + "' (want once@N with N >= 1)");
    }
    return s;
  }
  if (mode.rfind("1in", 0) == 0) {
    s.kind = Site::Kind::kEveryNth;
    s.n = parse_u64(mode.substr(3), &ok);
    if (!ok || s.n < 1) {
      throw FailpointError("failpoint '" + site + "': bad every-Nth mode '" +
                           mode + "' (want 1inN with N >= 1)");
    }
    return s;
  }
  char* end = nullptr;
  errno = 0;
  const double p = std::strtod(mode.c_str(), &end);
  if (mode.empty() || end != mode.c_str() + mode.size() || errno == ERANGE ||
      !(p >= 0.0 && p <= 1.0)) {
    throw FailpointError("failpoint '" + site + "': bad mode '" + mode +
                         "' (want once, once@N, 1inN, or a probability in "
                         "[0, 1])");
  }
  s.kind = Site::Kind::kProbability;
  s.p = p;
  return s;
}

/// One-time env parse hook: runs before main() so NETSEL_FAILPOINTS applies
/// to anything the program does, including static-free early startup paths.
struct EnvInit {
  EnvInit() { failpoints_from_env(); }
} g_env_init;

}  // namespace

namespace detail {

bool eval(const char* site) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.sites.find(site);
  if (it == r.sites.end()) return false;
  Site& s = it->second;
  ++s.evals;
  bool fire = false;
  switch (s.kind) {
    case Site::Kind::kOnce:
      fire = !s.consumed && s.evals == s.n;
      if (fire) s.consumed = true;
      break;
    case Site::Kind::kEveryNth:
      fire = s.evals % s.n == 0;
      break;
    case Site::Kind::kProbability: {
      const std::uint64_t draw = splitmix64(s.rng);
      // 53-bit mantissa uniform in [0, 1); strict < so p=0 never fires and
      // p=1 always does.
      const double u =
          static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
      fire = u < s.p;
      break;
    }
  }
  if (fire) ++s.fires;
  return fire;
}

}  // namespace detail

void failpoint_arm(const std::string& site, const std::string& mode,
                   std::uint64_t seed) {
  if (!valid_site_name(site)) {
    throw FailpointError("bad failpoint site name '" + site +
                         "' (want 1-128 chars of [a-z0-9._-])");
  }
  Site s = parse_mode(site, mode);
  // Deterministic per-site stream: the same (site, mode, seed) triple always
  // produces the same firing pattern — the chaos harness's repro contract.
  s.rng = fnv1a64(site) ^ fnv1a64(mode) ^ (seed * 0x2545f4914f6cdd1dULL);
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto [it, inserted] = r.sites.insert_or_assign(site, std::move(s));
  (void)it;
  if (inserted) detail::g_armed.fetch_add(1, std::memory_order_relaxed);
}

bool failpoint_disarm(const std::string& site) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  if (r.sites.erase(site) == 0) return false;
  detail::g_armed.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void failpoint_disarm_all() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  detail::g_armed.fetch_sub(static_cast<int>(r.sites.size()),
                            std::memory_order_relaxed);
  r.sites.clear();
}

std::vector<FailpointInfo> failpoint_list() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<FailpointInfo> out;
  out.reserve(r.sites.size());
  for (const auto& [name, s] : r.sites) {
    out.push_back({name, s.mode_text, s.evals, s.fires});
  }
  return out;  // std::map iteration is already name-sorted
}

int failpoint_arm_spec(const std::string& spec, std::uint64_t seed) {
  int armed = 0;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(start, comma - start);
    start = comma + 1;
    if (entry.find_first_not_of(" \t") == std::string::npos) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      throw FailpointError("failpoint spec entry '" + entry +
                           "' has no '=' (want site=mode)");
    }
    failpoint_arm(entry.substr(0, eq), entry.substr(eq + 1), seed);
    ++armed;
  }
  return armed;
}

int failpoints_from_env() {
  const char* spec = std::getenv("NETSEL_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return 0;
  std::uint64_t seed = 0;
  if (const char* seed_env = std::getenv("NETSEL_FAILPOINT_SEED")) {
    bool ok = false;
    seed = parse_u64(seed_env, &ok);
    if (!ok) {
      std::fprintf(stderr,
                   "warning: NETSEL_FAILPOINT_SEED='%s' is not a non-negative "
                   "integer; using 0\n",
                   seed_env);
      seed = 0;
    }
  }
  // Entry-at-a-time with warn-and-skip: an env typo must not abort the
  // process, but every valid site in the spec must still arm.
  int armed = 0;
  const std::string text(spec);
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string entry = text.substr(start, comma - start);
    start = comma + 1;
    if (entry.find_first_not_of(" \t") == std::string::npos) continue;
    try {
      armed += failpoint_arm_spec(entry, seed);
    } catch (const FailpointError& e) {
      std::fprintf(stderr, "warning: NETSEL_FAILPOINTS: %s (entry skipped)\n",
                   e.what());
    }
  }
  return armed;
}

}  // namespace smartexp3::util
