// Failpoints: named fault sites compiled into the binary, armed at runtime.
//
// A site is a string like "checkpoint.write.enospc" evaluated at the exact
// place the corresponding real fault would strike:
//
//   if (util::failpoint("checkpoint.write.enospc")) { /* inject the fault */ }
//
// The *site* decides what firing means (throw, truncate a write, abort) —
// the registry only decides *when*. Sites are armed per-process via the
// NETSEL_FAILPOINTS environment variable, programmatically (failpoint_arm),
// or over the wire through netsel_serve's "inject" request:
//
//   NETSEL_FAILPOINTS=checkpoint.write.enospc=1in7,serve.sock.short_read=0.3
//
// Modes (the grammar DESIGN.md §8 documents):
//   once        fire on the 1st evaluation, then never again
//   once@N      fire on the Nth evaluation only (one-shot, N >= 1)
//   1inN        fire on every Nth evaluation (N, 2N, 3N, ...)
//   P           fire with probability P in [0, 1] per evaluation, drawn from
//               a per-site deterministic RNG seeded from the site name, the
//               mode text and NETSEL_FAILPOINT_SEED — same spec, same seed,
//               same firing pattern.
//
// Zero overhead when off: failpoint() is a single relaxed atomic load and a
// never-taken branch while no site is armed — nothing in the registry is
// touched, no string is hashed, no lock is contended. The slow path (any
// site armed, anywhere) takes a mutex; fault injection is a testing mode,
// not a hot path. Evaluation and fire counters per site are exposed for the
// serve stats endpoint and the chaos harness.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace smartexp3::util {

/// Raised by failpoint_arm on a malformed site name or mode spec.
class FailpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One armed site's observable state (failpoint_list / serve stats).
struct FailpointInfo {
  std::string site;
  std::string mode;          ///< the mode text it was armed with
  std::uint64_t evals = 0;   ///< times the site was evaluated while armed
  std::uint64_t fires = 0;   ///< times it actually fired
};

/// Arm `site` with `mode` (grammar above). Re-arming an armed site replaces
/// its mode and resets its counters and RNG. `seed` perturbs the per-site
/// RNG stream for probability modes (0 = the NETSEL_FAILPOINT_SEED default).
/// Throws FailpointError on an empty/oversized site name or a bad mode.
void failpoint_arm(const std::string& site, const std::string& mode,
                   std::uint64_t seed = 0);

/// Disarm one site. Returns false when it was not armed.
bool failpoint_disarm(const std::string& site);

/// Disarm everything (test teardown; chaos schedule boundaries).
void failpoint_disarm_all();

/// Every armed site, sorted by name. A consumed one-shot stays listed (its
/// fires counter shows it spent) until disarmed.
std::vector<FailpointInfo> failpoint_list();

/// Arm a comma-separated "site=mode,site=mode" spec. Throws FailpointError
/// on the first malformed entry (sites armed before it stay armed). Returns
/// the number of sites armed.
int failpoint_arm_spec(const std::string& spec, std::uint64_t seed = 0);

/// Parse NETSEL_FAILPOINTS (+ NETSEL_FAILPOINT_SEED) from the environment.
/// Called once automatically before main(); malformed entries warn on
/// stderr and are skipped — a typo in an env var must not take the process
/// down. Returns the number of sites armed.
int failpoints_from_env();

namespace detail {
extern std::atomic<int> g_armed;  ///< number of armed sites, process-wide
bool eval(const char* site);      ///< slow path: registry lookup + mode logic
}  // namespace detail

/// True when any site is armed. The zero-overhead fast path other layers may
/// branch on before doing failpoint-only setup work.
inline bool failpoints_armed() {
  return detail::g_armed.load(std::memory_order_relaxed) != 0;
}

/// Evaluate the site: true = inject the fault here, now.
inline bool failpoint(const char* site) {
  return failpoints_armed() && detail::eval(site);
}

/// RAII guard for tests: arms a site on construction (optional) and disarms
/// every site on destruction, so no schedule leaks into the next test.
class FailpointScope {
 public:
  FailpointScope() = default;
  FailpointScope(const std::string& site, const std::string& mode,
                 std::uint64_t seed = 0) {
    failpoint_arm(site, mode, seed);
  }
  FailpointScope(const FailpointScope&) = delete;
  FailpointScope& operator=(const FailpointScope&) = delete;
  ~FailpointScope() { failpoint_disarm_all(); }
};

}  // namespace smartexp3::util
