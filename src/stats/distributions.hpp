// Continuous distributions used by the simulation substrate.
//
// The paper models WiFi switching delay with a Johnson-SU distribution and
// cellular switching delay with a Student-t distribution (each the best fit
// to 500 measured delay values; the fitted parameters were not published).
// We implement both samplers from scratch and expose parameter structs so the
// delay models in netsim/ can be calibrated; see DESIGN.md §3 for the
// calibration used in the reproduction and for the fixed-cost inverse-CDF
// sampling scheme (one uniform draw per variate on the hot paths).
#pragma once

#include "stats/rng.hpp"

namespace smartexp3::stats {

/// Johnson SU distribution: x = xi + lambda * sinh((z - gamma) / delta),
/// z ~ N(0,1). Unbounded, skewed family often fit to network delays.
struct JohnsonSU {
  double gamma = 0.0;   ///< shape (skew): negative skews right
  double delta = 1.0;   ///< shape (tail weight), must be > 0
  double xi = 0.0;      ///< location
  double lambda = 1.0;  ///< scale, must be > 0

  /// One variate from one uniform draw: the closed-form quantile function
  /// xi + lambda * sinh((Phi^-1(u) - gamma) / delta).
  double sample(Rng& rng) const;
  /// Quantile function (exact up to norm_ppf accuracy).
  double icdf(double u) const;
  /// CDF: Phi(gamma + delta * asinh((x - xi) / lambda)).
  double cdf(double x) const;
  /// Mean of the distribution (closed form).
  double mean() const;
  /// Variance of the distribution (closed form).
  double variance() const;
};

/// Student-t distribution with location/scale. The generic sampler draws
/// x = loc + scale * Z / sqrt(V / nu) with Z ~ N(0,1), V ~ chi^2(nu); hot
/// paths should prefer an IcdfTable built from pdf() (see
/// netsim::DistributionDelayModel), which needs one uniform per variate.
struct StudentT {
  double nu = 4.0;     ///< degrees of freedom, must be > 0
  double loc = 0.0;    ///< location
  double scale = 1.0;  ///< scale, must be > 0

  double sample(Rng& rng) const;
  /// Density (exact closed form; used to build inverse-CDF tables).
  double pdf(double x) const;
  /// Log of the density's normalisation constant (depends only on nu and
  /// scale-free): hoist it via the two-argument pdf overload when
  /// evaluating the density many times, as the table builder does.
  double log_norm() const;
  double pdf(double x, double ln_norm) const;
  /// CDF via the regularised incomplete beta function (exact closed form;
  /// the independent reference the table-driven sampler is tested against).
  double cdf(double x) const;
};

/// Log-normal: exp(N(mu, sigma)). Used for per-device share heterogeneity in
/// the controlled-experiment substrate.
struct LogNormal {
  double mu = 0.0;
  double sigma = 0.25;

  double sample(Rng& rng) const;
  double mean() const;
};

/// Gamma(shape k, scale theta) sampler (Marsaglia–Tsang); used to build the
/// chi-square draws inside StudentT and available to workload generators.
/// The shape < 1 boost is applied iteratively (no recursion).
double sample_gamma(Rng& rng, double shape, double scale);

/// Regularised incomplete beta function I_x(a, b) (continued fraction),
/// exposed for tests; powers StudentT::cdf.
double incomplete_beta(double a, double b, double x);

/// Clamp helper for delay draws: delays must be non-negative and strictly
/// below the slot duration (the paper chose 15 s slots specifically to
/// exceed the maximum observed switching delay).
double clamp_delay(double raw, double max_delay);

}  // namespace smartexp3::stats
