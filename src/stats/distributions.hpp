// Continuous distributions used by the simulation substrate.
//
// The paper models WiFi switching delay with a Johnson-SU distribution and
// cellular switching delay with a Student-t distribution (each the best fit
// to 500 measured delay values; the fitted parameters were not published).
// We implement both samplers from scratch and expose parameter structs so the
// delay models in netsim/ can be calibrated; see DESIGN.md §3 for the
// calibration used in the reproduction.
#pragma once

#include "stats/rng.hpp"

namespace smartexp3::stats {

/// Johnson SU distribution: x = xi + lambda * sinh((z - gamma) / delta),
/// z ~ N(0,1). Unbounded, skewed family often fit to network delays.
struct JohnsonSU {
  double gamma = 0.0;   ///< shape (skew): negative skews right
  double delta = 1.0;   ///< shape (tail weight), must be > 0
  double xi = 0.0;      ///< location
  double lambda = 1.0;  ///< scale, must be > 0

  double sample(Rng& rng) const;
  /// Mean of the distribution (closed form).
  double mean() const;
};

/// Student-t distribution with location/scale, sampled as
/// x = loc + scale * Z / sqrt(V / nu) with Z ~ N(0,1), V ~ chi^2(nu).
struct StudentT {
  double nu = 4.0;     ///< degrees of freedom, must be > 0
  double loc = 0.0;    ///< location
  double scale = 1.0;  ///< scale, must be > 0

  double sample(Rng& rng) const;
};

/// Log-normal: exp(N(mu, sigma)). Used for per-device share heterogeneity in
/// the controlled-experiment substrate.
struct LogNormal {
  double mu = 0.0;
  double sigma = 0.25;

  double sample(Rng& rng) const;
  double mean() const;
};

/// Gamma(shape k, scale theta) sampler (Marsaglia–Tsang); used to build the
/// chi-square draws inside StudentT and available to workload generators.
double sample_gamma(Rng& rng, double shape, double scale);

/// Clamp helper for delay draws: delays must be non-negative and strictly
/// below the slot duration (the paper chose 15 s slots specifically to
/// exceed the maximum observed switching delay).
double clamp_delay(double raw, double max_delay);

}  // namespace smartexp3::stats
