#include "stats/icdf.hpp"

#include <cmath>

namespace smartexp3::stats {

namespace {

// Wichura (1988), Algorithm AS 241, PPND16 coefficient sets. Three rational
// approximations of degree 7/7: one for the central region |u - 0.5| <=
// 0.425 and two for the tails in r = sqrt(-log(min(u, 1-u))).
constexpr double kA[8] = {
    3.3871328727963666080e+0, 1.3314166789178437745e+2, 1.9715909503065514427e+3,
    1.3731693765509461125e+4, 4.5921953931549871457e+4, 6.7265770927008700853e+4,
    3.3430575583588128105e+4, 2.5090809287301226727e+3};
constexpr double kB[8] = {
    1.0,                      4.2313330701600911252e+1, 6.8718700749205790830e+2,
    5.3941960214247511077e+3, 2.1213794301586595867e+4, 3.9307895800092710610e+4,
    2.8729085735721942674e+4, 5.2264952788528545610e+3};
constexpr double kC[8] = {
    1.42343711074968357734e+0, 4.63033784615654529590e+0, 5.76949722146069140550e+0,
    3.64784832476320460504e+0, 1.27045825245236838258e+0, 2.41780725177450611770e-1,
    2.27238449892691845833e-2, 7.74545014278341407640e-4};
constexpr double kD[8] = {
    1.0,                       2.05319162663775882187e+0, 1.67638483018380384940e+0,
    6.89767334985100004550e-1, 1.48103976427480074590e-1, 1.51986665636164571966e-2,
    5.47593808499534494600e-4, 1.05075007164441684324e-9};
constexpr double kE[8] = {
    6.65790464350110377720e+0, 5.46378491116411436990e+0, 1.78482653991729133580e+0,
    2.96560571828504891230e-1, 2.65321895265761230930e-2, 1.24266094738807843860e-3,
    2.71155556874348757815e-5, 2.01033439929228813265e-7};
constexpr double kF[8] = {
    1.0,                       5.99832206555887937690e-1, 1.36929880922735805310e-1,
    1.48753612908506148525e-2, 7.86869131145613259100e-4, 1.84631831751005468180e-5,
    1.42151175831644588870e-7, 2.04426310338993978564e-15};

inline double rational(const double (&p)[8], const double (&q)[8], double r) {
  const double num = ((((((p[7] * r + p[6]) * r + p[5]) * r + p[4]) * r + p[3]) * r +
                       p[2]) * r + p[1]) * r + p[0];
  const double den = ((((((q[7] * r + q[6]) * r + q[5]) * r + q[4]) * r + q[3]) * r +
                       q[2]) * r + q[1]) * r + q[0];
  return num / den;
}

}  // namespace

double norm_ppf(double u) {
  // Clamp into the open interval: a 53-bit uniform() can be exactly 0, and
  // callers may pass 1.0; both must map to finite quantiles (+-8.13 / +8.21).
  constexpr double kLo = 0x1.0p-54;
  if (!(u > kLo)) u = kLo;                 // also catches NaN
  if (u > 1.0 - 0x1.0p-53) u = 1.0 - 0x1.0p-53;

  const double q = u - 0.5;
  if (std::abs(q) <= 0.425) {
    const double r = 0.180625 - q * q;
    return q * rational(kA, kB, r);
  }
  double r = q < 0.0 ? u : 1.0 - u;
  r = std::sqrt(-std::log(r));
  const double x = r <= 5.0 ? rational(kC, kD, r - 1.6) : rational(kE, kF, r - 5.0);
  return q < 0.0 ? -x : x;
}

double norm_cdf(double x) {
  return 0.5 * std::erfc(-x * 0.70710678118654752440);  // 1/sqrt(2)
}

}  // namespace smartexp3::stats
