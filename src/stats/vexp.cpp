// The vexp kernel. Compiled with -ffp-contract=off (see CMakeLists.txt) and
// marked noinline so the arithmetic below is evaluated exactly as written,
// once, for every caller — FMA contraction or caller-specific re-compilation
// would make the "same bits everywhere" guarantee toolchain-dependent.
//
// Algorithm (the classic Cephes expl/exp scheme):
//   k  = round(x / ln 2)                  (magic-constant round-to-nearest)
//   r  = x - k*C1 - k*C2                  (Cody–Waite, |r| <= ln(2)/2)
//   e^r = 1 + 2 r P(r^2) / (Q(r^2) - r P(r^2))   (rational minimax)
//   e^x = e^r * 2^k                       (integer add into the exponent)
// Max relative error of the rational form is ~2e-16 (about 1 ulp); the
// end-to-end bound asserted by tests/test_vexp.cpp is 4 ulp.
#include "stats/vexp.hpp"

#include <bit>
#include <cmath>
#include <cstdint>

namespace smartexp3::stats {

namespace {

// Cody–Waite split of ln 2: C1 holds the high bits exactly, C2 the rest.
constexpr double kLog2E = 1.4426950408889634073599;
constexpr double kC1 = 6.93145751953125e-1;
constexpr double kC2 = 1.42860682030941723212e-6;

// Cephes exp() minimax coefficients for |r| <= ln(2)/2.
constexpr double kP0 = 1.26177193074810590878e-4;
constexpr double kP1 = 3.02994407707441961300e-2;
constexpr double kP2 = 9.99999999999999999910e-1;
constexpr double kQ0 = 3.00198505138664455042e-6;
constexpr double kQ1 = 2.52448340349684104192e-3;
constexpr double kQ2 = 2.27265548208155028766e-1;
constexpr double kQ3 = 2.00000000000000000005e0;

// 1.5 * 2^52: adding and subtracting it rounds a double in [-2^51, 2^51] to
// the nearest integer without a cvt/floor round trip (and floor() is a libm
// call on pre-SSE4 targets, which would block vectorization).
constexpr double kRoundMagic = 6755399441055744.0;

// exp underflows to 0 below, saturates to +inf above. The thresholds are
// conservative (inside the representable range) so the scaled result of the
// clamped core never overflows before the select fixes it up.
constexpr double kUnderflowX = -708.0;
constexpr double kOverflowX = 709.0;

/// The per-element core on a pre-clamped argument xc in [kUnderflowX,
/// kOverflowX]. Pure mul/add/div plus integer exponent-field arithmetic —
/// deliberately no int<->double conversion instruction (cvttsd2si has no
/// packed form below AVX-512, and one scalar op in the chain un-vectorizes
/// the whole loop): the rounded integer k is read straight out of the
/// magic-shifted double's mantissa bits.
inline double exp_core(double xc) {
  const double t = xc * kLog2E + kRoundMagic;
  const double kd = t - kRoundMagic;
  // t = 1.5 * 2^52 + k exactly, so the mantissa field holds k relative to
  // the magic constant's own bits (valid for |k| < 2^51, far beyond the
  // clamp range).
  const std::int64_t k =
      std::bit_cast<std::int64_t>(t) - std::bit_cast<std::int64_t>(kRoundMagic);
  const double r = (xc - kd * kC1) - kd * kC2;
  const double rr = r * r;
  const double p = r * ((kP0 * rr + kP1) * rr + kP2);
  const double q = ((kQ0 * rr + kQ1) * rr + kQ2) * rr + kQ3;
  const double m = 1.0 + 2.0 * (p / (q - p));
  // 2^k via the exponent field. |k| <= 1023 inside the valid window, so the
  // biased exponent stays in range for one scaling step; m is within
  // [~0.7, ~1.5]. The shift goes through uint64 so an out-of-window k (the
  // slow path clamps before calling, the fast path screens first) is
  // garbage-in-garbage-out rather than UB.
  const double two_k =
      std::bit_cast<double>(static_cast<std::uint64_t>(k + 1023) << 52);
  return m * two_k;
}

/// Full-range semantics: clamp into the core's valid window, then fix up
/// true under/overflow and NaN. This form branches per element, so it is
/// the *slow* path — but it defines the kernel's semantics; the fast path
/// below only runs where it produces identical bits.
inline double exp_element(double x) {
  const double xc = x < kUnderflowX ? kUnderflowX : (x > kOverflowX ? kOverflowX : x);
  double y = exp_core(xc);
  y = x < kUnderflowX ? 0.0 : y;
  y = x > kOverflowX ? HUGE_VAL : y;
  y = x != x ? x : y;
  return y;
}

}  // namespace

// Function multiversioning widens the kernel on capable hardware (AVX2 runs
// it 4-wide) while the portable clone keeps baseline machines working. Every
// clone compiles the same contraction-free arithmetic — packed IEEE mul/add/
// div round identically to their scalar forms — so the selected ISA never
// changes the output bits. Sanitizer builds skip the clones: the ifunc
// resolver multiversioning plants runs before the sanitizer runtime is
// initialised and crashes at startup (observed with TSan), and sanitizer
// runs measure correctness, not nanoseconds.
//
// Structure: an OR-reduction scan finds whether any element needs the edge
// handling (under/overflow, NaN). Almost never — the packed policy deltas
// live in [-eta, +gamma*ghat/k] — so the common case is two branch-free
// vectorized passes; GCC's if-converter refuses the fused clamp+core loop,
// and a rare whole-buffer scalar fallback costs nothing measurable. The
// scan runs before anything is written, which is what makes in-place calls
// (out == x) safe on both paths.
#ifndef __has_feature
#define __has_feature(x) 0  // GCC spells the sanitizers __SANITIZE_*__
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__) || \
    __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SMARTEXP3_VEXP_ATTRS __attribute__((noinline))
#else
#define SMARTEXP3_VEXP_ATTRS __attribute__((noinline, target_clones("default", "avx2")))
#endif

SMARTEXP3_VEXP_ATTRS void vexp(const double* x, double* out, std::size_t n) {
  int edge = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = x[i];
    edge |= static_cast<int>(!(v > kUnderflowX)) | static_cast<int>(!(v < kOverflowX));
  }
  if (__builtin_expect(edge != 0, 0)) {
    for (std::size_t i = 0; i < n; ++i) out[i] = exp_element(x[i]);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = exp_core(x[i]);
}

__attribute__((noinline)) double vexp_one(double x) { return exp_element(x); }

__attribute__((noinline)) void vexp_exact(const double* x, double* out,
                                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::exp(x[i]);
}

}  // namespace smartexp3::stats
