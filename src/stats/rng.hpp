// Deterministic, fast pseudo-random number generation for the simulator.
//
// All randomness in the library flows through stats::Rng so that every
// simulation run is reproducible from a single 64-bit seed. The generator is
// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64 so that nearby seeds
// (base_seed + run_index) produce decorrelated streams.
#pragma once

#include <array>
#include <cstdint>
#include <cmath>
#include <cassert>
#include <vector>

#include "stats/icdf.hpp"

namespace smartexp3::stats {

/// xoshiro256++ pseudo-random generator with convenience draws.
///
/// Satisfies the UniformRandomBitGenerator concept, so it can also be used
/// with <random> distributions if ever needed; the library's own samplers in
/// distributions.hpp only use the methods below.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialise the full 256-bit state from a 64-bit seed via SplitMix64.
  /// The 256-bit xoshiro state is the generator's *only* state (no cached
  /// derived samples), so reseeding fully determines all subsequent output —
  /// pinned by Rng.ReseedFullyDeterminesSubsequentOutput.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step: guarantees a well-mixed, non-zero state.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  result_type operator()() { return next(); }

  /// Uniform in [0, 1). 53-bit resolution.
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0. Uses Lemire rejection to
  /// avoid modulo bias.
  std::uint64_t below(std::uint64_t n) {
    assert(n > 0);
    __uint128_t m = static_cast<__uint128_t>(next()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int int_in(int lo, int hi) {
    assert(lo <= hi);
    return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw.
  bool chance(double p) { return uniform() < p; }

  /// Fair coin flip.
  bool coin() { return (next() & 1ULL) != 0; }

  /// Standard normal via the inverse-CDF map of a single uniform (Wichura
  /// AS241): every variate consumes exactly one 64-bit RNG output and the
  /// generator carries no derived state (the previous Box–Muller kept a
  /// cached half-sample that survived reseed()).
  double normal() { return norm_ppf(uniform()); }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -mean * std::log(u);
  }

  /// Sample an index from a discrete probability distribution. The
  /// distribution need not be perfectly normalised; any residual mass maps
  /// to the last index. Empty input is a precondition violation.
  template <typename Container>
  std::size_t sample_discrete(const Container& probs) {
    assert(!probs.empty());
    double u = uniform();
    std::size_t i = 0;
    for (const double p : probs) {
      u -= p;
      if (u < 0.0) return i;
      ++i;
    }
    return probs.size() - 1;
  }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent child generator (e.g. one per device).
  Rng split() { return Rng{next() ^ 0xd1b54a32d192ed03ULL}; }

  /// The full 256-bit generator state, for checkpointing. The state words
  /// are the generator's *only* state (no cached derived samples), so
  /// saving and restoring them resumes the stream exactly where it left
  /// off — pinned by the snapshot round-trip tests.
  const std::array<std::uint64_t, 4>& state_words() const { return state_; }
  void set_state_words(const std::array<std::uint64_t, 4>& words) { state_ = words; }

 private:
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace smartexp3::stats
