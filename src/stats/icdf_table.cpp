#include "stats/icdf_table.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace smartexp3::stats {

namespace {

// One log instead of log + log1p: the quotient form loses at most an ulp of
// the interpolation coordinate, far below the knot spacing, and shaves a
// libm call off every table lookup.
inline double logit(double u) { return std::log(u / (1.0 - u)); }

}  // namespace

IcdfTable IcdfTable::from_pdf(const std::function<double(double)>& pdf, double x_lo,
                              double x_hi, double center, double scale,
                              BuildOptions opts) {
  assert(x_lo < x_hi);
  assert(scale > 0.0);
  assert(opts.knots >= 4 && opts.fine_points >= 16);
  assert(opts.tail_eps > 0.0 && opts.tail_eps < 0.5);

  // 1. Numeric CDF: trapezoid integration of the density on a fine grid
  // uniform in s, where x = center + scale * sinh(s). The sinh stretch keeps
  // the grid dense (spacing ~ scale * ds) around the mode, where the mass
  // is, while still reaching far tail bounds in logarithmically many points.
  const int n = opts.fine_points;
  const double s_lo = std::asinh((x_lo - center) / scale);
  const double s_hi = std::asinh((x_hi - center) / scale);
  std::vector<double> fx(static_cast<std::size_t>(n));
  std::vector<double> fcum(static_cast<std::size_t>(n));
  std::vector<double> fpdf(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double s = s_lo + (s_hi - s_lo) * static_cast<double>(i) /
                                static_cast<double>(n - 1);
    fx[static_cast<std::size_t>(i)] = center + scale * std::sinh(s);
    fpdf[static_cast<std::size_t>(i)] =
        std::max(pdf(fx[static_cast<std::size_t>(i)]), 0.0);
  }
  fcum[0] = 0.0;
  for (int i = 1; i < n; ++i) {
    const auto j = static_cast<std::size_t>(i);
    fcum[j] = fcum[j - 1] +
              0.5 * (fpdf[j] + fpdf[j - 1]) * (fx[j] - fx[j - 1]);
  }
  const double total = fcum.back();
  assert(total > 0.0);
  for (double& c : fcum) c /= total;  // normalise: F(x_lo) = 0, F(x_hi) = 1

  // 2. Invert the fine CDF at logit-spaced knot targets u_k (monotone
  // forward scan: both the knot targets and the cumulative are increasing).
  IcdfTable table;
  const int k = opts.knots;
  table.v_lo_ = logit(opts.tail_eps);
  table.v_hi_ = logit(1.0 - opts.tail_eps);
  const double dv = (table.v_hi_ - table.v_lo_) / static_cast<double>(k - 1);
  table.inv_dv_ = 1.0 / dv;
  table.x_.resize(static_cast<std::size_t>(k));
  std::size_t j = 0;
  for (int i = 0; i < k; ++i) {
    const double v = table.v_lo_ + dv * static_cast<double>(i);
    const double u = 1.0 / (1.0 + std::exp(-v));  // logistic, inverse of logit
    while (j + 2 < fcum.size() && fcum[j + 1] < u) ++j;
    const double span = fcum[j + 1] - fcum[j];
    const double t = span > 0.0 ? std::clamp((u - fcum[j]) / span, 0.0, 1.0) : 0.0;
    table.x_[static_cast<std::size_t>(i)] = fx[j] + t * (fx[j + 1] - fx[j]);
  }

  // 3. Fritsch-Carlson monotone cubic slopes in v-space. The quantile
  // function is non-decreasing, so secants are >= 0; the limiter caps each
  // knot slope at 3x its adjacent secants, which is sufficient (and
  // necessary) for the Hermite interpolant to be monotone on every cell.
  table.m_.assign(static_cast<std::size_t>(k), 0.0);
  std::vector<double> secant(static_cast<std::size_t>(k - 1));
  for (int i = 0; i + 1 < k; ++i) {
    const auto s = static_cast<std::size_t>(i);
    secant[s] = (table.x_[s + 1] - table.x_[s]) * table.inv_dv_;
  }
  table.m_[0] = secant.front();
  table.m_[static_cast<std::size_t>(k - 1)] = secant.back();
  for (int i = 1; i + 1 < k; ++i) {
    const auto s = static_cast<std::size_t>(i);
    table.m_[s] = 0.5 * (secant[s - 1] + secant[s]);
  }
  for (int i = 0; i + 1 < k; ++i) {
    const auto s = static_cast<std::size_t>(i);
    if (secant[s] <= 0.0) {
      table.m_[s] = 0.0;
      table.m_[s + 1] = 0.0;
      continue;
    }
    const double alpha = table.m_[s] / secant[s];
    const double beta = table.m_[s + 1] / secant[s];
    const double norm2 = alpha * alpha + beta * beta;
    if (norm2 > 9.0) {
      const double tau = 3.0 / std::sqrt(norm2);
      table.m_[s] = tau * alpha * secant[s];
      table.m_[s + 1] = tau * beta * secant[s];
    }
  }
  return table;
}

double IcdfTable::operator()(double u) const {
  // Guard the logit: uniform() can return exactly 0.
  constexpr double kLo = 0x1.0p-54;
  if (!(u > kLo)) u = kLo;
  if (u > 1.0 - 0x1.0p-53) u = 1.0 - 0x1.0p-53;
  const double v = logit(u);
  if (v <= v_lo_) return x_.front();
  if (v >= v_hi_) return x_.back();
  double t = (v - v_lo_) * inv_dv_;
  auto i = static_cast<std::size_t>(t);
  if (i + 1 >= x_.size()) i = x_.size() - 2;  // v == v_hi_ rounding guard
  t -= static_cast<double>(i);
  // Cubic Hermite on the cell, rearranged for fused evaluation.
  const double dx = x_[i + 1] - x_[i];
  const double dv = 1.0 / inv_dv_;
  const double a = m_[i] * dv - dx;
  const double b = -(m_[i + 1] * dv - dx);
  const double omt = 1.0 - t;
  return omt * x_[i] + t * x_[i + 1] + t * omt * (a * omt + b * t);
}

}  // namespace smartexp3::stats
