// Batched exponentials for the policy hot loops.
//
// vexp() is a small fixed-cost exp kernel (Cody–Waite range reduction plus
// the Cephes rational approximation, 2^k scaling by exponent-field
// arithmetic) written as a plain elementwise loop over plain mul/add/div
// doubles, so the compiler can auto-vectorize it 2–8 wide depending on the
// target ISA. It exists because the EXP3-family weight updates are the last
// per-arm exp on the engine hot path: packing a whole policy group's update
// deltas into one buffer and running vexp over it replaces one libm call per
// (device, arm) with a handful of vector ops.
//
// Exactness contract (see DESIGN.md §4):
//   - vexp is *deterministic* — the kernel is compiled once, in its own
//     translation unit, with FP contraction off and inlining disabled, so
//     every caller (scalar policy path, batched policy path, tests) gets
//     bit-identical results for the same input on every standards-conforming
//     toolchain. Element i of the output depends only on element i of the
//     input, never on the batch length, which is what makes the batched and
//     scalar policy paths bit-identical to each other.
//   - vexp is *accurate* but not bit-identical to std::exp: the relative
//     error bound is a few ulp (pinned by tests/test_vexp.cpp). Call sites
//     where bit-identity to std::exp matters — the WeightTable log-space
//     re-anchor, the icdf construction paths — must use vexp_exact() or
//     std::exp directly. Switching a trajectory-feeding call site between
//     the two families is a deliberate golden-trajectory bump.
#pragma once

#include <cstddef>

namespace smartexp3::stats {

/// out[i] = exp-kernel(x[i]) for i in [0, n). In-place operation (out == x)
/// is allowed. Handles the full double range: underflows flush to 0,
/// overflows saturate to +inf, NaN propagates.
void vexp(const double* x, double* out, std::size_t n);

/// The one-element form of the same kernel: vexp_one(v) produces exactly the
/// bits vexp() produces for an element of value v.
double vexp_one(double x);

/// Scalar-exact path: out[i] = std::exp(x[i]), bit-identical to libm. Used
/// where the exp bits are contractual (and by tests as the reference).
void vexp_exact(const double* x, double* out, std::size_t n);

}  // namespace smartexp3::stats
