// Inverse normal CDF (probit) and normal CDF.
//
// norm_ppf is the engine of the fixed-cost sampling layer (DESIGN.md §3):
// every normal variate in the library is produced as norm_ppf(u) from a
// single uniform draw, so each variate consumes exactly one 64-bit RNG
// output. That one-draw contract is what makes per-(seed, device-id) RNG
// streams advance in lockstep with the number of samples taken — no
// data-dependent rejection loops, no cached half-samples — and it is pinned
// by tests/test_sampling_equivalence.cpp.
#pragma once

#include <cmath>

namespace smartexp3::stats {

/// Inverse of the standard normal CDF (Wichura's AS241 / PPND16 rational
/// approximation, relative error < 1e-15 across (0, 1)).
///
/// Total on doubles: u is clamped into [2^-54, 1 - 2^-53] first, so the
/// 0.0 a 53-bit uniform can produce maps to a finite quantile (~ -8.13)
/// instead of -infinity. Monotone non-decreasing in u.
double norm_ppf(double u);

/// Standard normal CDF Phi(x), via erfc (full double accuracy).
double norm_cdf(double x);

/// sinh via a single exp: 0.5 * (e - 1/e) with e = e^w, plus a Taylor
/// branch for |w| < 1e-5 where that difference would cancel. Accurate to a
/// few ulp everywhere (the Taylor remainder is O(w^5) ~ 1e-25 relative at
/// the crossover) and noticeably faster than std::sinh / the expm1
/// formulation on common libms, which matters on the Johnson-SU delay path.
inline double fast_sinh(double w) {
  if (w < 1e-5 && w > -1e-5) return w * (1.0 + w * w * (1.0 / 6.0));
  const double e = std::exp(w);
  return 0.5 * (e - 1.0 / e);
}

}  // namespace smartexp3::stats
