#include "stats/distributions.hpp"

#include <cassert>
#include <cmath>

#include "stats/icdf.hpp"

namespace smartexp3::stats {

double JohnsonSU::sample(Rng& rng) const { return icdf(rng.uniform()); }

double JohnsonSU::icdf(double u) const {
  assert(delta > 0.0 && lambda > 0.0);
  const double z = norm_ppf(u);
  return xi + lambda * fast_sinh((z - gamma) / delta);
}

double JohnsonSU::cdf(double x) const {
  return norm_cdf(gamma + delta * std::asinh((x - xi) / lambda));
}

double JohnsonSU::mean() const {
  // E[X] = xi - lambda * exp(1/(2 delta^2)) * sinh(gamma / delta)
  return xi - lambda * std::exp(0.5 / (delta * delta)) * std::sinh(gamma / delta);
}

double JohnsonSU::variance() const {
  // Var[X] = lambda^2 / 2 * (w - 1) * (w * cosh(2 gamma / delta) + 1),
  // with w = exp(1 / delta^2).
  const double w = std::exp(1.0 / (delta * delta));
  return 0.5 * lambda * lambda * (w - 1.0) *
         (w * std::cosh(2.0 * gamma / delta) + 1.0);
}

double sample_gamma(Rng& rng, double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  // Marsaglia & Tsang (2000). For shape < 1, boost a Gamma(shape + 1) draw
  // by U^(1/shape); the boost is folded in at the end rather than recursing.
  double boost = 1.0;
  if (shape < 1.0) {
    const double u = std::max(rng.uniform(), 1e-300);
    boost = std::pow(u, 1.0 / shape);
    shape += 1.0;
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = rng.normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * (x * x) * (x * x)) return d * v * scale * boost;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale * boost;
    }
  }
}

namespace {

/// Continued fraction for the incomplete beta function (modified Lentz).
double beta_cont_frac(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 1e-15;
  constexpr double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  assert(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the expansion that converges fast for the given x.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cont_frac(a, b, x) / a;
  }
  return 1.0 - front * beta_cont_frac(b, a, 1.0 - x) / b;
}

double StudentT::sample(Rng& rng) const {
  assert(nu > 0.0 && scale > 0.0);
  const double z = rng.normal();
  // chi^2(nu) == Gamma(nu/2, 2)
  const double v = sample_gamma(rng, nu / 2.0, 2.0);
  return loc + scale * z / std::sqrt(std::max(v / nu, 1e-12));
}

double StudentT::log_norm() const {
  assert(nu > 0.0);
  return std::lgamma(0.5 * (nu + 1.0)) - std::lgamma(0.5 * nu) -
         0.5 * std::log(nu * 3.14159265358979323846);
}

double StudentT::pdf(double x) const { return pdf(x, log_norm()); }

double StudentT::pdf(double x, double ln_norm) const {
  assert(nu > 0.0 && scale > 0.0);
  const double y = (x - loc) / scale;
  return std::exp(ln_norm - 0.5 * (nu + 1.0) * std::log1p(y * y / nu)) / scale;
}

double StudentT::cdf(double x) const {
  const double y = (x - loc) / scale;
  const double ib = incomplete_beta(0.5 * nu, 0.5, nu / (nu + y * y));
  return y > 0.0 ? 1.0 - 0.5 * ib : 0.5 * ib;
}

double LogNormal::sample(Rng& rng) const {
  return std::exp(rng.normal(mu, sigma));
}

double LogNormal::mean() const { return std::exp(mu + 0.5 * sigma * sigma); }

double clamp_delay(double raw, double max_delay) {
  if (raw < 0.0) return 0.0;
  if (raw > max_delay) return max_delay;
  return raw;
}

}  // namespace smartexp3::stats
