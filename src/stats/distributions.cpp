#include "stats/distributions.hpp"

#include <cassert>
#include <cmath>

namespace smartexp3::stats {

double JohnsonSU::sample(Rng& rng) const {
  assert(delta > 0.0 && lambda > 0.0);
  const double z = rng.normal();
  return xi + lambda * std::sinh((z - gamma) / delta);
}

double JohnsonSU::mean() const {
  // E[X] = xi - lambda * exp(1/(2 delta^2)) * sinh(gamma / delta)
  return xi - lambda * std::exp(0.5 / (delta * delta)) * std::sinh(gamma / delta);
}

double sample_gamma(Rng& rng, double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  // Marsaglia & Tsang (2000). For shape < 1, boost via U^(1/shape).
  if (shape < 1.0) {
    const double u = std::max(rng.uniform(), 1e-300);
    return sample_gamma(rng, shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = rng.normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * (x * x) * (x * x)) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

double StudentT::sample(Rng& rng) const {
  assert(nu > 0.0 && scale > 0.0);
  const double z = rng.normal();
  // chi^2(nu) == Gamma(nu/2, 2)
  const double v = sample_gamma(rng, nu / 2.0, 2.0);
  return loc + scale * z / std::sqrt(std::max(v / nu, 1e-12));
}

double LogNormal::sample(Rng& rng) const {
  return std::exp(rng.normal(mu, sigma));
}

double LogNormal::mean() const { return std::exp(mu + 0.5 * sigma * sigma); }

double clamp_delay(double raw, double max_delay) {
  if (raw < 0.0) return 0.0;
  if (raw > max_delay) return max_delay;
  return raw;
}

}  // namespace smartexp3::stats
