// Table-driven inverse-CDF sampling for distributions with no cheap closed
// form (DESIGN.md §3).
//
// An IcdfTable approximates a distribution's quantile function x = F^{-1}(u)
// with a monotone cubic Hermite interpolant whose knots are uniform in
// v = logit(u). The logit stretch is what makes the grid tail-aware: equal
// steps in v pack knots into the regions where the quantile function is
// steep (u -> 0 and u -> 1), exactly where a uniform-in-u grid loses
// accuracy. Uniform knots in v also make lookup O(1) — index arithmetic, no
// binary search — so sampling is a fixed-cost pipeline:
//
//   u -> v = logit(u) -> cell index -> Hermite evaluation
//
// consuming exactly one 64-bit RNG output per variate and never touching the
// heap. Construction (the numeric CDF + knot inversion) happens once per
// parameter set; the Fritsch-Carlson slope limiter guarantees the
// interpolant is monotone, so the sampler is a genuine quantile function.
#pragma once

#include <functional>
#include <vector>

#include "stats/rng.hpp"

namespace smartexp3::stats {

class IcdfTable {
 public:
  struct BuildOptions {
    int knots = 1025;          ///< coarse interpolation knots (>= 4)
    int fine_points = 65537;   ///< numeric-CDF integration grid (>= 16)
    double tail_eps = 1e-7;    ///< knot coverage: u in [tail_eps, 1 - tail_eps]
  };

  /// Build from an (unnormalised is fine) density on [x_lo, x_hi]. The
  /// density is integrated on an asinh-stretched fine grid centred on
  /// `center` with characteristic width `scale` — dense near the mode,
  /// logarithmically sparse in the far tails — then the cumulative is
  /// inverted at the logit-spaced knots. Mass outside [x_lo, x_hi] is
  /// treated as zero, so pick bounds past the quantiles at tail_eps.
  static IcdfTable from_pdf(const std::function<double(double)>& pdf, double x_lo,
                            double x_hi, double center, double scale,
                            BuildOptions opts);
  static IcdfTable from_pdf(const std::function<double(double)>& pdf, double x_lo,
                            double x_hi, double center, double scale) {
    return from_pdf(pdf, x_lo, x_hi, center, scale, BuildOptions{});
  }

  /// Approximate quantile function. Monotone in u; u outside
  /// [tail_eps, 1 - tail_eps] clamps to the edge knots.
  double operator()(double u) const;

  /// One variate = one uniform = one 64-bit RNG output. Allocation-free.
  double sample(Rng& rng) const { return (*this)(rng.uniform()); }

  /// Quantile at the lowest / highest covered u (the clamp values).
  double min_value() const { return x_.front(); }
  double max_value() const { return x_.back(); }

 private:
  IcdfTable() = default;

  double v_lo_ = 0.0;   ///< logit(tail_eps)
  double v_hi_ = 0.0;   ///< logit(1 - tail_eps)
  double inv_dv_ = 0.0; ///< cells / logit unit
  std::vector<double> x_;  ///< quantile values at the knots
  std::vector<double> m_;  ///< dx/dv knot slopes (Fritsch-Carlson limited)
};

}  // namespace smartexp3::stats
