// Summary statistics used when aggregating simulation runs into the numbers
// the paper reports (means, medians, standard deviations, percentiles, and
// the Jain fairness index).
#pragma once

#include <cstddef>
#include <vector>

namespace smartexp3::stats {

/// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
double stddev(const std::vector<double>& xs);

/// Median (average of the two middle order statistics for even n);
/// 0 for an empty sample. Does not modify the input.
double median(std::vector<double> xs);

/// Linear-interpolated percentile, p in [0, 100]; 0 for an empty sample.
double percentile(std::vector<double> xs, double p);

double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// Jain fairness index: (sum x)^2 / (n * sum x^2), in (0, 1]; 1 for an
/// empty sample by convention (nothing to be unfair about).
double jain_index(const std::vector<double>& xs);

/// Incremental mean/variance accumulator (Welford). Useful when a metric is
/// produced one run at a time and the full sample need not be retained.
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n-1)
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Element-wise accumulator over equal-length series (e.g. distance-to-NE
/// per slot averaged across runs).
class SeriesAccumulator {
 public:
  /// Add one run's series. All series added must have identical length.
  void add(const std::vector<double>& series);
  std::vector<double> mean() const;
  std::size_t runs() const { return runs_; }
  bool empty() const { return runs_ == 0; }

 private:
  std::vector<double> sum_;
  std::size_t runs_ = 0;
};

}  // namespace smartexp3::stats
