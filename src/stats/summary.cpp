#include "stats/summary.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace smartexp3::stats {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (const double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid), xs.end());
  const double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  const double lo = *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  if (lo == hi) return xs[lo];
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double min_of(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double s = 0.0;
  double ss = 0.0;
  for (const double x : xs) {
    s += x;
    ss += x * x;
  }
  if (ss <= 0.0) return 1.0;
  return (s * s) / (static_cast<double>(xs.size()) * ss);
}

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void SeriesAccumulator::add(const std::vector<double>& series) {
  if (runs_ == 0) {
    sum_ = series;
  } else {
    if (series.size() != sum_.size()) {
      throw std::invalid_argument("SeriesAccumulator: mismatched series length");
    }
    for (std::size_t i = 0; i < series.size(); ++i) sum_[i] += series[i];
  }
  ++runs_;
}

std::vector<double> SeriesAccumulator::mean() const {
  std::vector<double> out(sum_.size(), 0.0);
  if (runs_ == 0) return out;
  for (std::size_t i = 0; i < sum_.size(); ++i) {
    out[i] = sum_[i] / static_cast<double>(runs_);
  }
  return out;
}

}  // namespace smartexp3::stats
