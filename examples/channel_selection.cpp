// WiFi channel selection (the paper's §IX future work): 12 co-located
// access points pick among the three non-overlapping 2.4 GHz channels.
// Same congestion game, different resource — demonstrating that the library
// is a general resource-selection toolkit, not just a network picker.
// Also shows utility shaping (the other §IX item): a cost-aware device
// that discounts a metered network.
#include <iostream>
#include <unordered_map>

#include "core/exp3.hpp"
#include "core/utility_shaping.hpp"
#include "exp/aggregate.hpp"
#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

int main() {
  using namespace smartexp3;

  exp::print_heading("Channel selection — 12 APs, channels 1/6/11");
  std::vector<std::vector<std::string>> rows;
  for (const auto* policy : {"smart_exp3", "greedy", "exp3"}) {
    auto cfg = exp::make_setting("channel", {.policy = policy});
    const auto results = exp::run_many(cfg, 30);
    const auto series = exp::mean_distance_series(results);
    double tail = 0.0;
    for (std::size_t i = series.size() - 60; i < series.size(); ++i) tail += series[i];
    tail /= 60.0;
    rows.push_back({policy, exp::fmt(exp::switch_summary(results).mean, 1),
                    exp::fmt(tail, 1) + " %",
                    exp::fmt(100.0 * exp::mean_eps_fraction(results), 1) + " %"});
  }
  exp::print_table({"policy", "re-tunes per AP", "final distance", "%slots at eps-eq"},
                   rows);
  std::cout << "\nAt equilibrium each channel carries 4 APs; Smart EXP3 gets\n"
               "there decentralised, with bounded re-tuning.\n";

  // ---- utility shaping: a metered cellular network ----
  exp::print_heading("Utility shaping — throughput vs. metered cellular");
  // Two networks: free WiFi at 6 Mbps, metered cellular at 22 Mbps. A pure
  // throughput learner camps on cellular; a cost-aware one flips to WiFi.
  const double gain_scale = 22.0;
  auto run_device = [&](bool cost_aware) {
    std::unordered_map<NetworkId, core::NetworkCosts> costs;
    costs[1] = {/*cost_per_mb=*/0.02, /*energy_per_slot=*/0.1};
    core::UtilityWeights weights;
    weights.cost = cost_aware ? 1.0 : 0.0;
    weights.energy = cost_aware ? 1.0 : 0.0;
    auto policy = core::make_utility_shaped(std::make_unique<core::Exp3>(7), weights,
                                            costs, gain_scale);
    policy->set_networks({0, 1});
    int on_cellular = 0;
    for (int t = 0; t < 2000; ++t) {
      const NetworkId c = policy->choose(t);
      on_cellular += c == 1 ? 1 : 0;
      core::SlotFeedback fb;
      fb.gain = (c == 0 ? 6.0 : 22.0) / gain_scale;
      fb.bit_rate_mbps = fb.gain * gain_scale;
      policy->observe(t, fb);
    }
    return on_cellular / 2000.0;
  };
  std::cout << "throughput-only learner : "
            << exp::fmt(100.0 * run_device(false), 0)
            << " % of slots on the metered network\n";
  std::cout << "cost-aware learner      : "
            << exp::fmt(100.0 * run_device(true), 0)
            << " % of slots on the metered network\n";
  return 0;
}
