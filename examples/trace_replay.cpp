// Trace replay: generate (or load) a WiFi/cellular trace pair, save it to
// CSV, replay it through Smart EXP3, and print the selection timeline.
// Demonstrates the trace substrate — the same path a user would take to
// evaluate the algorithms on their own collected throughput traces:
//
//   trace_replay [trace.csv]
//
// With an argument, the CSV (slot,wifi_mbps,cellular_mbps) is loaded
// instead of generating a synthetic pair.
#include <filesystem>
#include <iostream>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/spec_io.hpp"
#include "trace/synth.hpp"

namespace {

using namespace smartexp3;

/// A single device choosing between the traced WiFi and cellular networks —
/// built directly from the public config API, the same way a user would wire
/// their own collected traces into an experiment.
exp::ExperimentConfig replay_config(const trace::TracePair& pair,
                                    const std::string& policy) {
  exp::ExperimentConfig cfg;
  cfg.name = "trace-replay-" + pair.label;
  cfg.world.horizon = static_cast<Slot>(pair.slots());
  auto wifi = netsim::make_wifi(0, 0.0, {}, "wifi-trace");
  wifi.trace = pair.wifi_mbps;
  auto cell = netsim::make_cellular(1, 0.0, {}, "cellular-trace");
  cell.trace = pair.cellular_mbps;
  cfg.networks = {std::move(wifi), std::move(cell)};
  netsim::DeviceSpec device;
  device.id = 1;
  device.policy_name = policy;
  cfg.devices = {device};
  cfg.recorder.track_selections = true;
  cfg.recorder.track_distance = false;  // single device: congestion moot
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smartexp3;

  trace::TracePair pair;
  if (argc > 1) {
    pair = trace::load_csv(argv[1]);
    std::cout << "Loaded " << pair.slots() << " slots from " << argv[1] << "\n";
  } else {
    pair = trace::synthetic_pair(3);
    const auto out = std::filesystem::temp_directory_path() / "smartexp3_trace3.csv";
    trace::save_csv(pair, out.string());
    std::cout << "Generated synthetic pair 3 (greedy-trap regime) and saved it to\n"
              << out.string() << " — pass a CSV path to replay your own traces.\n";
  }

  const auto summary = trace::summarise(pair);
  std::cout << "wifi mean " << exp::fmt(summary.wifi_mean) << " Mbps, cellular mean "
            << exp::fmt(summary.cellular_mean) << " Mbps, cellular leads "
            << exp::fmt(100.0 * summary.cellular_dominance, 0) << " % of slots, "
            << summary.crossovers << " lead changes\n";

  exp::print_heading("Replaying through Smart EXP3 and Greedy");
  for (const auto* policy : {"smart_exp3", "greedy"}) {
    auto cfg = replay_config(pair, policy);
    const auto run = exp::run_once(cfg, 42);
    std::string ride;
    for (const int net : run.selections[0]) ride += net == 1 ? 'C' : 'w';
    std::cout << '\n' << policy << ": downloaded " << exp::fmt(run.total_download_mb, 0)
              << " MB, switching cost " << exp::fmt(run.switching_cost_mb[0], 1)
              << " MB, " << run.switches[0] << " switches\n";
    std::cout << "  ride (w=wifi, C=cellular):\n  " << ride << '\n';
  }

  std::cout << "\nwifi trace:     [" << exp::sparkline(pair.wifi_mbps, 60) << "]\n";
  std::cout << "cellular trace: [" << exp::sparkline(pair.cellular_mbps, 60) << "]\n";

  // The whole experiment — traces included — serializes to a ScenarioSpec,
  // so the exact replay can be re-run or edited without this program:
  //   netsel_sim --spec <file>
  const auto spec_path =
      std::filesystem::temp_directory_path() / "smartexp3_trace_replay.json";
  exp::save_spec_file(replay_config(pair, "smart_exp3"), spec_path.string());
  std::cout << "\nSaved the experiment as a ScenarioSpec: " << spec_path.string()
            << "\nRe-run it any time with: netsel_sim --spec " << spec_path.string()
            << '\n';
  return 0;
}
