// Trace replay: generate (or load) a WiFi/cellular trace pair, save it to
// CSV, replay it through Smart EXP3, and print the selection timeline.
// Demonstrates the trace substrate — the same path a user would take to
// evaluate the algorithms on their own collected throughput traces:
//
//   trace_replay [trace.csv]
//
// With an argument, the CSV (slot,wifi_mbps,cellular_mbps) is loaded
// instead of generating a synthetic pair.
#include <filesystem>
#include <iostream>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/settings.hpp"
#include "trace/synth.hpp"

int main(int argc, char** argv) {
  using namespace smartexp3;

  trace::TracePair pair;
  if (argc > 1) {
    pair = trace::load_csv(argv[1]);
    std::cout << "Loaded " << pair.slots() << " slots from " << argv[1] << "\n";
  } else {
    pair = trace::synthetic_pair(3);
    const auto out = std::filesystem::temp_directory_path() / "smartexp3_trace3.csv";
    trace::save_csv(pair, out.string());
    std::cout << "Generated synthetic pair 3 (greedy-trap regime) and saved it to\n"
              << out.string() << " — pass a CSV path to replay your own traces.\n";
  }

  const auto summary = trace::summarise(pair);
  std::cout << "wifi mean " << exp::fmt(summary.wifi_mean) << " Mbps, cellular mean "
            << exp::fmt(summary.cellular_mean) << " Mbps, cellular leads "
            << exp::fmt(100.0 * summary.cellular_dominance, 0) << " % of slots, "
            << summary.crossovers << " lead changes\n";

  exp::print_heading("Replaying through Smart EXP3 and Greedy");
  for (const auto* policy : {"smart_exp3", "greedy"}) {
    auto cfg = exp::trace_setting(pair, policy);
    const auto run = exp::run_once(cfg, 42);
    std::string ride;
    for (const int net : run.selections[0]) ride += net == 1 ? 'C' : 'w';
    std::cout << '\n' << policy << ": downloaded " << exp::fmt(run.total_download_mb, 0)
              << " MB, switching cost " << exp::fmt(run.switching_cost_mb[0], 1)
              << " MB, " << run.switches[0] << " switches\n";
    std::cout << "  ride (w=wifi, C=cellular):\n  " << ride << '\n';
  }

  std::cout << "\nwifi trace:     [" << exp::sparkline(pair.wifi_mbps, 60) << "]\n";
  std::cout << "cellular trace: [" << exp::sparkline(pair.cellular_mbps, 60) << "]\n";
  return 0;
}
