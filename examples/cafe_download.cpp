// Cafe download race (the paper's in-the-wild §VII-B scenario): one laptop,
// a public WiFi and a tethered cellular network, both under drifting
// background load, and a 500 MB file to fetch. Runs Smart EXP3 and Greedy
// head-to-head on identical load realisations and reports the download
// times. Demonstrates trace-driven networks and driving a World slot by
// slot against a goal.
#include <algorithm>
#include <iostream>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace {

using namespace smartexp3;

std::vector<double> wifi_trace(int slots, stats::Rng& rng) {
  // Fast when quiet, but a lunch-rush crowd usually camps on it for a while.
  std::vector<double> t;
  const bool rush = rng.chance(0.9);
  const int starts = rush ? rng.int_in(10, 25) : slots + 1;
  const int ends = starts + rng.int_in(60, 90);
  const int size = rng.int_in(10, 14);
  int load = rng.int_in(1, 2);
  for (int i = 0; i < slots; ++i) {
    if (rng.chance(0.3)) load += rng.coin() ? 1 : -1;
    const int crowd = (i >= starts && i < ends) ? size : 0;
    t.push_back(16.0 / (1.0 + std::clamp(load + crowd, 1, 14)));
  }
  return t;
}

std::vector<double> cellular_trace(int slots, stats::Rng& rng) {
  std::vector<double> t;
  int load = rng.int_in(3, 4);
  for (int i = 0; i < slots; ++i) {
    if (rng.chance(0.3)) load = std::clamp(load + (rng.coin() ? 1 : -1), 2, 5);
    t.push_back(14.0 / (1.0 + load));
  }
  return t;
}

double race(const std::string& policy, std::uint64_t seed) {
  const int horizon = 400;
  stats::Rng rng(seed);  // same seed => same cafe conditions for both racers
  auto wifi = netsim::make_wifi(0, 0.0, {}, "cafe-wifi");
  wifi.trace = wifi_trace(horizon, rng);
  auto cell = netsim::make_cellular(1, 0.0, {}, "tethered-phone");
  cell.trace = cellular_trace(horizon, rng);

  exp::ExperimentConfig cfg;
  cfg.world.horizon = horizon;
  cfg.networks = {std::move(wifi), std::move(cell)};
  netsim::DeviceSpec laptop;
  laptop.id = 1;
  laptop.policy_name = policy;
  cfg.devices = {laptop};
  cfg.recorder.track_distance = false;

  auto world = exp::build_world(cfg, seed * 977);
  while (!world->done()) {
    world->step();
    if (world->devices().download_mb[0] >= 500.0) break;
  }
  return world->now() * 15.0 / 60.0;  // minutes
}

}  // namespace

int main() {
  using namespace smartexp3;

  exp::print_heading("Cafe download race — 500 MB over WiFi vs tethered cellular");
  std::vector<double> smart_minutes;
  std::vector<double> greedy_minutes;
  std::vector<std::vector<std::string>> rows;
  for (std::uint64_t run = 1; run <= 12; ++run) {
    const double s = race("smart_exp3", run);
    const double g = race("greedy", run);
    smart_minutes.push_back(s);
    greedy_minutes.push_back(g);
    rows.push_back({"run " + std::to_string(run), exp::fmt(s, 1) + " min",
                    exp::fmt(g, 1) + " min",
                    s < g ? "Smart EXP3" : (g < s ? "Greedy" : "tie")});
  }
  exp::print_table({"cafe visit", "Smart EXP3", "Greedy", "faster"}, rows);

  const double s = stats::mean(smart_minutes);
  const double g = stats::mean(greedy_minutes);
  std::cout << "\nmean: Smart EXP3 " << exp::fmt(s, 2) << " min, Greedy "
            << exp::fmt(g, 2) << " min -> " << exp::fmt(g / s, 2)
            << "x speedup (paper measured 1.2x / 18 % faster).\n";
  return 0;
}
