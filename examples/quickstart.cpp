// Quickstart: 20 devices running Smart EXP3 on the paper's setting 1
// (4 / 7 / 22 Mbps networks), one simulated run, with a summary of what the
// library measures. Start here to see the public API end to end.
#include <cstdio>
#include <iostream>

#include "exp/aggregate.hpp"
#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

int main() {
  using namespace smartexp3;

  // 1. Describe the experiment: paper §VI-A setting 1, everyone on Smart
  //    EXP3 (the setting's default policy). `netsel_sim --list` enumerates
  //    every canonical setting the registry can build.
  exp::ExperimentConfig config = exp::make_setting("setting1");
  config.recorder.track_stability = true;

  // 2. Run it (one run here; exp::run_many parallelises across seeds).
  metrics::RunResult run = exp::run_once(config, /*seed=*/1);

  // 3. Inspect the results.
  exp::print_heading("Smart EXP3 quickstart — setting 1 (4/7/22 Mbps, 20 devices)");
  std::cout << "slots simulated        : " << config.world.horizon << " (15 s each)\n";
  std::cout << "total download         : " << exp::fmt(run.total_download_mb / 1024.0)
            << " GB of the 74.25 GB offered\n";
  std::cout << "fraction of slots at NE: " << exp::fmt(100.0 * run.at_nash_fraction, 1)
            << " %\n";
  std::cout << "fraction at eps-eq     : " << exp::fmt(100.0 * run.eps_fraction, 1)
            << " % (eps = 7.5 %)\n";

  double switches = 0.0;
  double resets = 0.0;
  for (const int s : run.switches) switches += s;
  for (const int r : run.resets) resets += r;
  std::cout << "switches per device    : " << exp::fmt(switches / run.switches.size(), 1)
            << '\n';
  std::cout << "resets per device      : " << exp::fmt(resets / run.resets.size(), 1)
            << '\n';

  std::cout << "\nDistance to Nash equilibrium over time (Definition 3):\n";
  std::cout << "  [" << exp::sparkline(run.distance()) << "]\n";
  std::cout << "  start " << exp::fmt(run.distance().front(), 1) << " % -> end "
            << exp::fmt(run.distance().back(), 1) << " %\n";

  if (run.stability.stable) {
    std::cout << "\nStable state (Definition 2) reached at slot "
              << run.stability.stable_slot
              << (run.stability.at_nash ? " — at a Nash equilibrium\n"
                                        : " — at a non-NE state\n");
  } else {
    std::cout << "\nNo stable state reached in this run (resets re-explore by design).\n";
  }
  return 0;
}
