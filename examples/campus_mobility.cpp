// Campus mobility scenario (the paper's Figure 1 world): three service
// areas — food court, study area, bus stop — five networks with partial
// coverage, and a group of students walking across campus. Demonstrates
// service areas, scenario move events, per-group metrics, and how Smart
// EXP3's network-set-change rules handle appearing/disappearing networks.
#include <iostream>

#include "exp/aggregate.hpp"
#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace smartexp3;

  exp::print_heading("Campus mobility — 20 devices, 3 areas, 5 networks");
  std::cout <<
      "Networks: cellular 16 Mbps (campus-wide), WLANs 14/22/7/4 Mbps with\n"
      "local coverage. Devices 1-8 walk food court -> study area (slot 400)\n"
      "-> bus stop (slot 800). Every device runs Smart EXP3.\n";

  auto cfg = exp::make_setting("mobility");
  const int runs = 20;
  const auto results = exp::run_many(cfg, runs);

  const std::vector<std::string> groups = {"movers (1-8)", "food court (9-10)",
                                           "study area (11-15)", "bus stop (16-20)"};
  std::vector<std::vector<std::string>> rows;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const auto series = exp::mean_distance_series(results, g);
    double tail = 0.0;
    for (std::size_t i = series.size() - 100; i < series.size(); ++i) tail += series[i];
    tail /= 100.0;
    rows.push_back({groups[g], exp::sparkline(series, 50), exp::fmt(tail, 1) + " %"});
  }
  exp::print_table({"group", "distance to NE over the day", "final"}, rows);

  // Movers pay for adaptivity with extra resets and switches.
  std::vector<double> mover_switches;
  std::vector<double> other_switches;
  std::vector<double> mover_resets;
  for (const auto& run : results) {
    for (std::size_t i = 0; i < run.switches.size(); ++i) {
      (i < 8 ? mover_switches : other_switches)
          .push_back(static_cast<double>(run.switches[i]));
      if (i < 8) mover_resets.push_back(static_cast<double>(run.resets[i]));
    }
  }
  std::cout << "\nmovers:     " << exp::fmt(stats::mean(mover_switches), 1)
            << " switches, " << exp::fmt(stats::mean(mover_resets), 1)
            << " resets per device\n";
  std::cout << "stationary: " << exp::fmt(stats::mean(other_switches), 1)
            << " switches per device\n";
  std::cout << "\nThe movers keep discovering new networks (weight = max of the\n"
               "known ones + forced exploration), so they re-converge in each\n"
               "area instead of clinging to networks that left coverage.\n";
  return 0;
}
