// Random-variate layer throughput: ns/sample for every sampler on the
// simulation hot path, plus the one-time cost of building the Student-t
// inverse-CDF table.
//
// The switching-delay draws are the interesting rows: after the inverse-CDF
// rebuild, a WiFi delay is one uniform through Johnson-SU's closed-form
// quantile function and a cellular delay is one uniform through the
// prebuilt monotone-cubic table — fixed cost, no rejection loops, no
// allocation (the allocation counter shim pins the latter). The generic
// rejection-based Student-t sampler is measured alongside as the reference
// the table replaced on the hot path.
//
// Output: a table on stdout and BENCH_samplers.json in the working
// directory. REPRO_RUNS controls repetitions per sampler (smoke: 2).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "alloc_counter.hpp"
#include "bench_meta.hpp"
#include "exp/runner.hpp"
#include "netsim/delay_model.hpp"
#include "stats/distributions.hpp"
#include "stats/icdf.hpp"
#include "stats/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;
constexpr int kSamples = 4000000;

struct SamplerPerf {
  std::string name;
  double best_ns_per_sample = 1e300;
  std::uint64_t allocs = ~0ULL;
};

template <typename Body>
SamplerPerf measure(const std::string& name, int runs, Body&& body) {
  SamplerPerf out;
  out.name = name;
  volatile double sink = 0.0;
  for (int r = 0; r < runs; ++r) {
    smartexp3::stats::Rng rng(0x5eedULL + static_cast<std::uint64_t>(r));
    smartexp3::testing::start_alloc_counting();
    const auto start = Clock::now();
    for (int i = 0; i < kSamples; ++i) sink = sink + body(rng);
    const auto stop = Clock::now();
    const std::uint64_t allocs = smartexp3::testing::stop_alloc_counting();
    const double ns =
        std::chrono::duration<double, std::nano>(stop - start).count() / kSamples;
    if (ns < out.best_ns_per_sample) out.best_ns_per_sample = ns;
    if (allocs < out.allocs) out.allocs = allocs;
  }
  return out;
}

}  // namespace

int main() {
  using namespace smartexp3;
  const int runs = exp::repro_runs(5);

  // Build cost of the per-parameter-set table (the only non-fixed-cost part
  // of the layer, paid once at DistributionDelayModel construction).
  const auto build_start = Clock::now();
  netsim::DistributionDelayModel model;
  const auto build_stop = Clock::now();
  const double build_ms =
      std::chrono::duration<double, std::milli>(build_stop - build_start).count();

  const auto wifi = netsim::make_wifi(0, 10.0);
  const auto cell = netsim::make_cellular(1, 10.0);
  const stats::StudentT cellular = model.params().cellular;

  std::printf("# random-variate layer, %d samples/run, best of %d runs\n", kSamples,
              runs);
  std::printf("# student-t icdf table build: %.2f ms (once per parameter set)\n\n",
              build_ms);
  std::printf("%-34s %14s %10s\n", "sampler", "ns/sample", "allocs");

  std::vector<SamplerPerf> results;
  const auto record = [&](SamplerPerf p) {
    std::printf("%-34s %14.1f %10llu\n", p.name.c_str(), p.best_ns_per_sample,
                static_cast<unsigned long long>(p.allocs));
    results.push_back(std::move(p));
  };

  record(measure("uniform (baseline)", runs,
                 [](stats::Rng& rng) { return rng.uniform(); }));
  record(measure("normal (inverse-cdf)", runs,
                 [](stats::Rng& rng) { return rng.normal(); }));
  record(measure("delay wifi (johnson-su closed form)", runs,
                 [&](stats::Rng& rng) { return model.sample(wifi, rng); }));
  record(measure("delay cellular (student-t table)", runs,
                 [&](stats::Rng& rng) { return model.sample(cell, rng); }));
  record(measure("student-t (generic rejection)", runs,
                 [&](stats::Rng& rng) { return cellular.sample(rng); }));
  record(measure("gamma shape 2.0 (marsaglia-tsang)", runs, [](stats::Rng& rng) {
    return stats::sample_gamma(rng, 2.0, 2.0);
  }));
  record(measure("gamma shape 0.5 (iterative boost)", runs, [](stats::Rng& rng) {
    return stats::sample_gamma(rng, 0.5, 2.0);
  }));

  std::FILE* f = std::fopen("BENCH_samplers.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_samplers: cannot write BENCH_samplers.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"schema_version\": 2,\n");
  bench::write_meta(f);
  std::fprintf(f,
               "  \"config\": {\"samples\": %d, \"runs\": %d},\n"
               "  \"table_build_ms\": %.3f,\n  \"samplers\": [\n",
               kSamples, runs, build_ms);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& p = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ns_per_sample\": %.2f, \"allocs\": %llu}%s\n",
                 p.name.c_str(), p.best_ns_per_sample,
                 static_cast<unsigned long long>(p.allocs),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\n[json] wrote BENCH_samplers.json\n");
  return 0;
}
