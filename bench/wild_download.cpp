// Paper §VII-B, "experiments in the wild": in a coffee shop, a laptop
// downloads a 500 MB file choosing between a public WiFi network and a
// tethered cellular connection, both under uncontrolled, drifting load.
// Smart EXP3 finished in 12.90 min on average vs Greedy's 15.67 min —
// about 18 % faster (1.2x).
//
// The substitute: two networks whose rate available to the foreground
// device follows cap / (1 + B(t)) where B(t) is a per-network birth-death
// background-load process. Each "run" regenerates the load processes; the
// foreground device runs Smart EXP3 or Greedy until 500 MB are downloaded.
#include "bench_util.hpp"

#include "stats/summary.hpp"

namespace {

using namespace smartexp3;

/// Per-slot rate available to the foreground device on the public WiFi:
/// cap / (1 + B(t)) where B(t) is a small birth-death walk punctuated by a
/// lunch rush — with high probability a crowd walks in 2.5-6 minutes into
/// the download and camps on the WiFi for 15-22 minutes. This is the load
/// shift the paper observed on the coffee shop's WiFi (monitored with
/// Wireshark), and it is what makes lock-in strategies lose: by the time
/// the crowd arrives, Greedy's good WiFi history anchors its average far
/// above the network's new reality, so it keeps sitting on the crowded AP
/// long after Smart EXP3's drop-detector has moved it to cellular.
std::vector<double> wifi_load_trace(int slots, stats::Rng& rng) {
  std::vector<double> trace;
  trace.reserve(static_cast<std::size_t>(slots));
  const bool rush = rng.chance(0.9);
  const int rush_starts = rush ? rng.int_in(10, 25) : slots + 1;
  const int rush_ends = rush_starts + rng.int_in(60, 90);
  const int rush_size = rng.int_in(10, 14);
  int load = rng.int_in(1, 2);
  for (int t = 0; t < slots; ++t) {
    if (rng.chance(0.3)) load += rng.coin() ? 1 : -1;
    const int crowd = (t >= rush_starts && t < rush_ends) ? rush_size : 0;
    const int effective = std::clamp(load + crowd, 1, 14);
    trace.push_back(16.0 / (1.0 + effective));
  }
  return trace;
}

/// The tethered cellular link: slower but steadier (mild EcIo load drift,
/// as the paper monitored on the phone).
std::vector<double> cellular_load_trace(int slots, stats::Rng& rng) {
  std::vector<double> trace;
  trace.reserve(static_cast<std::size_t>(slots));
  int load = rng.int_in(3, 4);
  for (int t = 0; t < slots; ++t) {
    if (rng.chance(0.3)) load += rng.coin() ? 1 : -1;
    load = std::clamp(load, 2, 5);
    trace.push_back(14.0 / (1.0 + load));
  }
  return trace;
}

/// Slots needed to download `target_mb`; horizon if it never finishes.
int download_slots(const std::string& policy, std::uint64_t seed, double target_mb) {
  const int horizon = 400;  // 100 minutes cap
  stats::Rng rng(seed);
  // WiFi: fast when quiet (16/(1+1) = 8 Mbps) but exposed to the lunch
  // rush; cellular sits around 2.8-4.7 Mbps.
  auto wifi = netsim::make_wifi(0, 0.0, {}, "public-wifi");
  wifi.trace = wifi_load_trace(horizon, rng);
  auto cell = netsim::make_cellular(1, 0.0, {}, "tethered-cellular");
  cell.trace = cellular_load_trace(horizon, rng);

  exp::ExperimentConfig cfg;
  cfg.name = "wild-download";
  cfg.world.horizon = horizon;
  cfg.networks = {std::move(wifi), std::move(cell)};
  netsim::DeviceSpec dev;
  dev.id = 1;
  dev.policy_name = policy;
  cfg.devices = {dev};
  cfg.recorder.track_distance = false;

  auto world = exp::build_world(cfg, seed ^ 0xbeef);
  while (!world->done()) {
    world->step();
    if (world->devices().download_mb[0] >= target_mb) return world->now();
  }
  return horizon;
}

}  // namespace

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs(12);  // the paper did 12 runs per algorithm
  print_run_banner("§VII-B in-the-wild 500 MB download", runs);
  Stopwatch sw;

  std::vector<std::vector<std::string>> rows;
  double mean_minutes[2] = {0, 0};
  int p = 0;
  for (const auto* policy : {"smart_exp3", "greedy"}) {
    std::vector<double> minutes;
    for (int r = 0; r < runs; ++r) {
      const int slots =
          download_slots(policy, 5000 + static_cast<std::uint64_t>(r), 500.0);
      minutes.push_back(slots * 15.0 / 60.0);
    }
    mean_minutes[p] = stats::mean(minutes);
    rows.push_back({label_of(policy), exp::fmt(mean_minutes[p], 2),
                    exp::fmt(stats::median(minutes), 2),
                    exp::fmt(stats::stddev(minutes), 2),
                    policy == std::string("smart_exp3") ? "12.90" : "15.67"});
    ++p;
  }

  exp::print_heading("In-the-wild download time (minutes, 500 MB)");
  exp::print_table({"algorithm", "mean", "median", "sd", "paper mean"}, rows);
  exp::print_paper_vs_measured(
      "speedup of Smart EXP3 over Greedy", "1.2x (18 % faster)",
      exp::fmt(mean_minutes[1] / mean_minutes[0], 2) + "x");
  print_elapsed(sw);
  return 0;
}
