// Microbenchmarks (google-benchmark): per-slot decision cost of each policy
// and the full world step — the overhead a real device would pay to run
// Smart EXP3 is a few hundred nanoseconds per 15-second slot.
#include <benchmark/benchmark.h>

#include "core/factory.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "metrics/nash.hpp"

namespace {

using namespace smartexp3;

void BM_PolicyStep(benchmark::State& state, const std::string& name) {
  auto factory = core::make_named_policy_factory({4.0, 7.0, 22.0});
  auto policy = factory(0, name, 42);
  policy->set_networks({0, 1, 2});
  stats::Rng rng(7);
  int t = 0;
  core::SlotFeedback fb;
  fb.all_gains = {0.3, 0.5, 0.8};
  fb.all_rates_mbps = {6.6, 11.0, 17.6};
  for (auto _ : state) {
    const NetworkId c = policy->choose(t);
    benchmark::DoNotOptimize(c);
    fb.gain = rng.uniform();
    fb.bit_rate_mbps = fb.gain * 22.0;
    policy->observe(t, fb);
    ++t;
  }
}

void BM_WorldSlot20Devices(benchmark::State& state) {
  auto cfg = exp::make_setting("setting1");
  cfg.world.horizon = 1 << 30;  // never finish inside the benchmark
  auto world = exp::build_world(cfg, 1);
  for (auto _ : state) {
    world->step();
  }
  state.SetItemsProcessed(state.iterations() * 20);  // device-slots
}

void BM_FullRunSetting1(benchmark::State& state) {
  const auto cfg = exp::make_setting("setting1");
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto result = exp::run_once(cfg, ++seed);
    benchmark::DoNotOptimize(result.total_download_mb);
  }
}

void BM_WaterFill(benchmark::State& state) {
  const std::vector<double> caps = {4, 7, 22, 11, 16, 9, 14};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        metrics::water_fill_allocation(caps, static_cast<int>(state.range(0))));
  }
}

void BM_DistanceToNash(benchmark::State& state) {
  const std::vector<double> caps = {4, 7, 22};
  const std::vector<int> counts = {2, 4, 14};
  std::vector<int> nets;
  std::vector<double> gains;
  for (int i = 0; i < 20; ++i) {
    nets.push_back(i % 3);
    gains.push_back(1.5);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::distance_to_nash(caps, counts, nets, gains));
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_PolicyStep, exp3, std::string("exp3"));
BENCHMARK_CAPTURE(BM_PolicyStep, block_exp3, std::string("block_exp3"));
BENCHMARK_CAPTURE(BM_PolicyStep, hybrid_block_exp3, std::string("hybrid_block_exp3"));
BENCHMARK_CAPTURE(BM_PolicyStep, smart_exp3, std::string("smart_exp3"));
BENCHMARK_CAPTURE(BM_PolicyStep, smart_exp3_noreset, std::string("smart_exp3_noreset"));
BENCHMARK_CAPTURE(BM_PolicyStep, greedy, std::string("greedy"));
BENCHMARK_CAPTURE(BM_PolicyStep, full_information, std::string("full_information"));
BENCHMARK_CAPTURE(BM_PolicyStep, fixed_random, std::string("fixed_random"));
BENCHMARK(BM_WorldSlot20Devices);
BENCHMARK(BM_FullRunSetting1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WaterFill)->Arg(20)->Arg(80);
BENCHMARK(BM_DistanceToNash);

BENCHMARK_MAIN();
