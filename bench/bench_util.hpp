// Shared scaffolding for the paper-reproduction bench binaries.
//
// Every binary regenerates one table or figure of the paper: it runs the
// relevant setting REPRO_RUNS times per data point (default 60; the paper
// used 500 — set REPRO_RUNS=500 for full fidelity), prints the regenerated
// rows/series, and annotates them with the values the paper reports so the
// shape comparison is immediate.
#pragma once

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "exp/aggregate.hpp"
#include "exp/csv_export.hpp"
#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

namespace smartexp3::bench {

/// The seven decentralized-learning algorithms of the paper's Fig 2 (the
/// Centralized and Fixed Random baselines never switch / never learn and are
/// reported separately where the paper does so).
inline const std::vector<std::string>& learning_algorithms() {
  static const std::vector<std::string> algos = {
      "exp3",        "block_exp3",         "hybrid_block_exp3",
      "smart_exp3_noreset", "smart_exp3",  "greedy",
      "full_information"};
  return algos;
}

/// All nine algorithms in the paper's Table V order.
inline const std::vector<std::string>& all_algorithms() {
  static const std::vector<std::string> algos = {
      "exp3",       "block_exp3", "hybrid_block_exp3", "smart_exp3_noreset",
      "smart_exp3", "greedy",     "full_information",  "centralized",
      "fixed_random"};
  return algos;
}

/// Pretty label used in tables.
inline std::string label_of(const std::string& policy) {
  if (policy == "exp3") return "EXP3";
  if (policy == "block_exp3") return "Block EXP3";
  if (policy == "hybrid_block_exp3") return "Hybrid Block EXP3";
  if (policy == "smart_exp3_noreset") return "Smart EXP3 w/o Reset";
  if (policy == "smart_exp3") return "Smart EXP3";
  if (policy == "greedy") return "Greedy";
  if (policy == "full_information") return "Full Information";
  if (policy == "centralized") return "Centralized";
  if (policy == "fixed_random") return "Fixed Random";
  return policy;
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_run_banner(const std::string& artifact, int runs) {
  std::cout << "########################################################\n"
            << "# Reproduction of " << artifact << '\n'
            << "# runs per data point: " << runs
            << " (paper: 500; set REPRO_RUNS to change)\n"
            << "########################################################\n";
}

inline void print_elapsed(const Stopwatch& sw) {
  std::cout << "\n[elapsed " << exp::fmt(sw.seconds(), 1) << " s]\n";
}

/// If REPRO_CSV_DIR is set, write the labelled series there as
/// <dir>/<artifact>.csv (one column per series) for external plotting.
inline void maybe_export_series(const std::string& artifact,
                                const std::vector<std::string>& names,
                                const std::vector<std::vector<double>>& series) {
  const char* dir = std::getenv("REPRO_CSV_DIR");
  if (dir == nullptr || series.empty()) return;
  const std::string path = std::string(dir) + "/" + artifact + ".csv";
  exp::write_series_csv(path, names, series);
  std::cout << "[csv] wrote " << path << '\n';
}

}  // namespace smartexp3::bench
