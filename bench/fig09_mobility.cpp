// Paper Figure 9: setting 3 — three service areas (food court, study area,
// bus stop), five networks (cellular 16 Mbps everywhere; WLANs 14/22/7/4
// with local coverage), and 8 of 20 devices migrating across all three
// areas at slots 400 and 800. Distance to NE reported per device group.
//
// Expected shape: Smart EXP3 keeps every group's distance low (reaching
// epsilon-equilibrium), including the movers; EXP3 and Greedy drift.
#include "bench_util.hpp"

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs();
  print_run_banner("Figure 9 (mobility across service areas)", runs);
  Stopwatch sw;

  const std::vector<std::string> group_names = {"movers 1-8", "food court 9-10",
                                                "study area 11-15", "bus stop 16-20"};
  const std::vector<std::string> algos = {"exp3", "smart_exp3_noreset", "smart_exp3",
                                          "greedy"};

  for (const auto& algo : algos) {
    auto cfg = exp::make_setting("mobility", {.policy = algo});
    const auto results = exp::run_many(cfg, runs);
    exp::print_heading("Figure 9 — " + label_of(algo));
    std::vector<std::vector<std::string>> rows;
    for (std::size_t g = 0; g < group_names.size(); ++g) {
      const auto series = exp::mean_distance_series(results, g);
      auto window_mean = [&](std::size_t a, std::size_t b) {
        double s = 0.0;
        for (std::size_t i = a; i < b; ++i) s += series[i];
        return s / static_cast<double>(b - a);
      };
      rows.push_back({group_names[g], exp::sparkline(series, 44),
                      exp::fmt(window_mean(300, 400), 1),
                      exp::fmt(window_mean(700, 800), 1),
                      exp::fmt(window_mean(1100, 1200), 1)});
    }
    exp::print_table({"device group", "distance over time", "pre-move1", "pre-move2",
                      "tail"},
                     rows);
  }

  exp::print_paper_vs_measured(
      "Smart EXP3 in setting 3",
      "outperforms all alternatives for every group; reaches eps-equilibrium "
      "(eps = 7.5)",
      "compare tails across the four tables above");
  print_elapsed(sw);
  return 0;
}
