// Paper Table IV: median number of time slots to reach a stable state
// (Definition 2) for Block EXP3, Hybrid Block EXP3 and Smart EXP3 w/o Reset.
//
// Expected shape: Block >> Hybrid > Smart w/o Reset in both settings, with
// setting 2 (uniform rates, three equivalent equilibria) faster than
// setting 1. The paper reports 1026 / 583.5 / 359 (setting 1) and
// 810 / 366 / 244.5 (setting 2).
#include "bench_util.hpp"

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs();
  print_run_banner("Table IV (median slots to stable state)", runs);
  Stopwatch sw;

  struct PaperRow {
    const char* policy;
    double s1;
    double s2;
  };
  const std::vector<PaperRow> paper = {{"block_exp3", 1026, 810},
                                       {"hybrid_block_exp3", 583.5, 366},
                                       {"smart_exp3_noreset", 359, 244.5}};

  std::vector<std::vector<std::string>> rows;
  for (const auto& p : paper) {
    double measured[2] = {0, 0};
    double stable_pct[2] = {0, 0};
    for (const int setting : {1, 2}) {
      auto cfg = exp::make_setting(setting == 1 ? "setting1" : "setting2",
                                   {.policy = p.policy});
      cfg.recorder.track_stability = true;
      const auto s = exp::stability_summary(exp::run_many(cfg, runs));
      measured[setting - 1] = s.median_stable_slot;
      stable_pct[setting - 1] = 100.0 * s.stable_fraction;
    }
    rows.push_back({label_of(p.policy), exp::fmt(measured[0], 1), exp::fmt(p.s1, 1),
                    exp::fmt(stable_pct[0], 0) + "%", exp::fmt(measured[1], 1),
                    exp::fmt(p.s2, 1), exp::fmt(stable_pct[1], 0) + "%"});
  }

  exp::print_heading("Table IV — median slots to reach a stable state");
  exp::print_table({"algorithm", "setting1", "paper-s1", "%stable-s1", "setting2",
                    "paper-s2", "%stable-s2"},
                   rows);
  std::cout << "\n(Medians are over stable runs only, as in the paper; the\n"
               " %stable columns give the share of runs that stabilized.)\n";
  print_elapsed(sw);
  return 0;
}
