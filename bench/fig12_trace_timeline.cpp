// Paper Figure 12: the network-selection process of Smart EXP3 overlaid on
// trace pairs 1 and 3 — per slot, the WiFi rate, the cellular rate, and the
// bit rate Smart EXP3 actually observed (i.e. which network it rode).
// The run shown is the one whose cumulative download is closest to the
// median across runs, as in the paper.
#include "bench_util.hpp"

#include <cmath>

#include "trace/synth.hpp"

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs(200);
  print_run_banner("Figure 12 (Smart EXP3 selection timeline on traces 1 & 3)", runs);
  Stopwatch sw;

  for (const int idx : {1, 3}) {
    // The pair is regenerated locally for the overlay columns; the registry
    // builds the same one inside the trace setting.
    const auto pair = trace::synthetic_pair(idx);
    auto cfg = exp::make_setting("trace" + std::to_string(idx));
    const auto results = exp::run_many(cfg, runs);

    // Pick the run closest to the median download.
    const double median_dl = exp::median_total_download_mb(results);
    std::size_t best = 0;
    double best_gap = 1e300;
    for (std::size_t r = 0; r < results.size(); ++r) {
      const double gap = std::abs(results[r].total_download_mb - median_dl);
      if (gap < best_gap) {
        best_gap = gap;
        best = r;
      }
    }
    const auto& run = results[best];

    exp::print_heading("Figure 12 — trace " + std::to_string(idx) +
                       " (median-download run: " +
                       exp::fmt(run.total_download_mb, 0) + " MB)");
    std::cout << "# columns: slot, wifi_mbps, cellular_mbps, chosen(0=wifi,1=cell), "
                 "observed_mbps\n";
    for (std::size_t t = 0; t < pair.slots(); t += 2) {
      std::cout << "fig12_trace" << idx << ',' << t << ',' << exp::fmt(pair.wifi_mbps[t])
                << ',' << exp::fmt(pair.cellular_mbps[t]) << ','
                << run.selections[0][t] << ',' << exp::fmt(run.rates[0][t]) << '\n';
    }
    // Compact visual: which network it rode.
    std::string ride;
    for (std::size_t t = 0; t < pair.slots(); ++t) {
      ride += run.selections[0][t] == 1 ? 'C' : 'w';
    }
    std::cout << "ride (w=wifi, C=cellular):\n  " << ride << '\n';
  }
  print_elapsed(sw);
  return 0;
}
