// Paper Table VI: trace-driven simulation — median cumulative download and
// total switching cost (MB) for Smart EXP3 vs Greedy on four WiFi/cellular
// trace pairs (25 minutes each). Our pairs are synthetic stand-ins with the
// paper's qualitative regimes (see DESIGN.md §3).
//
// Expected shape: Smart EXP3 wins where the better network changes over the
// trace (pairs 1, 3, 4 — pair 3, the deep-fade pair, by the widest margin);
// Greedy ties or narrowly wins when cellular dominates throughout (pair 2).
// Smart pays an order of magnitude more switching cost, which stays small
// relative to the download.
#include "bench_util.hpp"

#include "trace/synth.hpp"

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs(200);  // single-device runs are cheap
  print_run_banner("Table VI (trace-driven download and switching cost)", runs);
  Stopwatch sw;

  struct PaperRow {
    double smart_dl, smart_cost, greedy_dl, greedy_cost;
  };
  const PaperRow paper[4] = {{764.16, 39.74, 671.07, 3.05},
                             {1188.56, 32.48, 1235.92, 6.14},
                             {657.81, 44.11, 428.47, 2.96},
                             {810.67, 51.11, 757.66, 4.50}};

  std::vector<std::vector<std::string>> rows;
  for (int idx = 1; idx <= 4; ++idx) {
    const auto pair = trace::synthetic_pair(idx);
    const auto summary = trace::summarise(pair);
    double dl[2];
    double cost[2];
    int p = 0;
    for (const auto* policy : {"smart_exp3", "greedy"}) {
      auto cfg = exp::make_setting("trace" + std::to_string(idx), {.policy = policy});
      const auto results = exp::run_many(cfg, runs);
      dl[p] = exp::median_total_download_mb(results);
      cost[p] = exp::median_total_switching_cost_mb(results);
      ++p;
    }
    const auto& pr = paper[idx - 1];
    rows.push_back({"trace " + std::to_string(idx),
                    exp::fmt(dl[0], 0), exp::fmt(cost[0], 1),
                    exp::fmt(dl[1], 0), exp::fmt(cost[1], 1),
                    exp::fmt(pr.smart_dl, 0) + "/" + exp::fmt(pr.greedy_dl, 0),
                    exp::fmt(100.0 * summary.cellular_dominance, 0) + "%",
                    std::to_string(summary.crossovers)});
  }

  exp::print_heading(
      "Table VI — median download (MB) and switching cost (MB), Smart vs Greedy");
  exp::print_table({"pair", "smart DL", "smart cost", "greedy DL", "greedy cost",
                    "paper DL (s/g)", "cell dominance", "lead changes"},
                   rows);
  std::cout << "\n(Absolute MB depend on the synthetic traces; the reproduction\n"
               " claim is the winner pattern and the cost asymmetry.)\n";
  print_elapsed(sw);
  return 0;
}
