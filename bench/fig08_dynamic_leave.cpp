// Paper Figure 8: dynamic setting 2 — 16 of 20 devices leave after slot
// 599, freeing most of the capacity. Average distance to NE over time.
//
// Expected shape: this is the experiment that shows why the minimal reset
// matters — only full Smart EXP3 discovers the freed resources (its
// periodic reset forces re-exploration); Smart w/o Reset, EXP3 and Greedy
// all hold large distances after the departure.
#include "bench_util.hpp"

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs();
  print_run_banner("Figure 8 (16 devices leave after t=600)", runs);
  Stopwatch sw;

  const std::vector<std::string> algos = {"exp3", "smart_exp3_noreset", "smart_exp3",
                                          "greedy"};
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> csv_names;
  std::vector<std::vector<double>> csv_series;
  std::vector<double> tails;
  for (const auto& algo : algos) {
    auto cfg = exp::make_setting("leave", {.policy = algo});
    // Device-parallel slot phases inside each world; trajectory unchanged.
    cfg.world.threads = exp::world_threads();
    const auto results = exp::run_many(cfg, runs);
    const auto series = exp::mean_distance_series(results);
    csv_names.push_back(algo);
    csv_series.push_back(series);
    auto window_mean = [&](std::size_t a, std::size_t b) {
      double s = 0.0;
      for (std::size_t i = a; i < b; ++i) s += series[i];
      return s / static_cast<double>(b - a);
    };
    tails.push_back(window_mean(1000, 1200));
    rows.push_back({label_of(algo), exp::sparkline(series, 48),
                    exp::fmt(window_mean(500, 600), 1),
                    exp::fmt(window_mean(600, 650), 1),
                    exp::fmt(window_mean(1000, 1200), 1)});
    if (algo == "smart_exp3" || algo == "smart_exp3_noreset") {
      exp::print_series_csv("fig8_" + algo, series, /*stride=*/40);
    }
  }
  exp::print_heading("Figure 8 — mean distance to NE (%)");
  exp::print_table({"algorithm", "distance over time", "pre-leave", "leave spike",
                    "tail"},
                   rows);
  exp::print_paper_vs_measured(
      "only the resetting variant recovers",
      "Smart EXP3 tail << Smart EXP3 w/o Reset tail",
      "smart=" + exp::fmt(tails[2], 1) + " % vs no-reset=" + exp::fmt(tails[1], 1) +
          " %");
  maybe_export_series("fig08", csv_names, csv_series);
  print_elapsed(sw);
  return 0;
}
