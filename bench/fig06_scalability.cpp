// Paper Figure 6: scalability of Smart EXP3 w/o Reset — median time slots
// to reach a stable state as the number of networks grows (3/5/7, 20
// devices) and as the number of devices grows (20/40/80, 3 networks), over
// 8640-slot (36 h) runs.
//
// Expected shape: roughly linear growth in the number of networks,
// sub-linear in the number of devices; (nearly) 100 % of runs stable at NE.
#include "bench_util.hpp"

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  // The 36-hour horizon makes this the slowest figure; default to fewer runs.
  const int runs = exp::repro_runs(30);
  // WORLD_THREADS>1 parallelises the slot phases inside each world (the
  // trajectory is unchanged); run_many then scales its run-level fan-out
  // down to compensate.
  const int world_threads = exp::world_threads();
  print_run_banner("Figure 6 (scalability of Smart EXP3 w/o Reset)", runs);
  Stopwatch sw;

  exp::print_heading("Figure 6 (left) — networks sweep, 20 devices");
  std::vector<std::vector<std::string>> rows;
  for (const int k : {3, 5, 7}) {
    auto cfg = exp::make_setting("scalability", {.devices = 20, .networks = k});
    cfg.world.threads = world_threads;
    cfg.recorder.track_distance = false;  // keep the long runs lean
    cfg.recorder.track_stability = true;
    const auto s = exp::stability_summary(exp::run_many(cfg, runs));
    rows.push_back({std::to_string(k), exp::fmt(s.median_stable_slot, 0),
                    exp::fmt(100.0 * s.stable_fraction, 1),
                    exp::fmt(100.0 * s.stable_at_nash_fraction, 1),
                    exp::fmt(100.0 * s.stable_at_eps_fraction, 1)});
  }
  exp::print_table(
      {"networks", "median slots to stable", "%stable", "%at-NE", "%at-eps-NE"}, rows);

  exp::print_heading("Figure 6 (right) — devices sweep, 3 networks");
  rows.clear();
  for (const int n : {20, 40, 80}) {
    auto cfg = exp::make_setting("scalability", {.devices = n, .networks = 3});
    cfg.world.threads = world_threads;
    cfg.recorder.track_distance = false;
    cfg.recorder.track_stability = true;
    const auto s = exp::stability_summary(exp::run_many(cfg, runs));
    rows.push_back({std::to_string(n), exp::fmt(s.median_stable_slot, 0),
                    exp::fmt(100.0 * s.stable_fraction, 1),
                    exp::fmt(100.0 * s.stable_at_nash_fraction, 1),
                    exp::fmt(100.0 * s.stable_at_eps_fraction, 1)});
  }
  exp::print_table(
      {"devices", "median slots to stable", "%stable", "%at-NE", "%at-eps-NE"}, rows);

  exp::print_paper_vs_measured(
      "growth shape",
      "linear in #networks, sub-linear in #devices; (nearly) 100 % at NE",
      "compare rows above; at larger scales the last off-by-one device move "
      "is worth < eps, so strict-NE undercounts — read %at-eps-NE");
  print_elapsed(sw);
  return 0;
}
