// Provenance stamp shared by the BENCH JSON writers: which commit produced
// the numbers and when. The regression gate (tools/check_bench_regression.py)
// compares only the "config" shape and the measured entries, so "meta" never
// trips it — it exists for humans and dashboards diffing BENCH files from
// different machines or commits.
#pragma once

#include <cstdio>
#include <ctime>

#ifndef SMARTEXP3_GIT_SHA
#define SMARTEXP3_GIT_SHA "unknown"
#endif

namespace smartexp3::bench {

/// Write `  "meta": {...},` (with trailing comma + newline) into an open
/// BENCH JSON object: the build's git commit and an ISO-8601 UTC timestamp.
inline void write_meta(std::FILE* f) {
  char stamp[sizeof "1970-01-01T00:00:00Z"] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm utc;
  if (gmtime_r(&now, &utc) != nullptr) {
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
  }
  std::fprintf(f,
               "  \"meta\": {\"git_sha\": \"%s\", \"generated_utc\": \"%s\"},\n",
               SMARTEXP3_GIT_SHA, stamp);
}

}  // namespace smartexp3::bench
