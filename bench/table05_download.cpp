// Paper Table V: mean (over runs) of the per-run median per-device
// cumulative download, in GB, for all nine algorithms in settings 1 and 2.
//
// Expected shape: block-based algorithms ~ Centralized (~3.5 GB);
// EXP3 / Full Information ~2.9 GB (switching losses); Greedy worse in
// setting 1 (strands the 4 Mbps network) but fine in setting 2; Fixed
// Random worst in setting 1.
#include "bench_util.hpp"

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs();
  print_run_banner("Table V (median cumulative download, GB)", runs);
  Stopwatch sw;

  struct PaperRow {
    const char* policy;
    double s1;
    double s2;
  };
  const std::vector<PaperRow> paper = {
      {"exp3", 2.89, 2.73},          {"block_exp3", 3.54, 3.65},
      {"hybrid_block_exp3", 3.41, 3.58}, {"smart_exp3_noreset", 3.53, 3.55},
      {"smart_exp3", 3.53, 3.62},    {"greedy", 3.12, 3.62},
      {"full_information", 2.92, 2.71}, {"centralized", 3.54, 3.54},
      {"fixed_random", 2.56, 3.43}};

  std::vector<std::vector<std::string>> rows;
  for (const auto& p : paper) {
    double gb[2] = {0, 0};
    for (const int setting : {1, 2}) {
      auto cfg = exp::make_setting(setting == 1 ? "setting1" : "setting2",
                                   {.policy = p.policy});
      const auto results = exp::run_many(cfg, runs);
      gb[setting - 1] = exp::mean_of_run_median_download_mb(results) / 1024.0;
    }
    rows.push_back({label_of(p.policy), exp::fmt(gb[0]), exp::fmt(p.s1),
                    exp::fmt(gb[1]), exp::fmt(p.s2)});
  }

  exp::print_heading("Table V — (mean) per-run median cumulative download (GB)");
  exp::print_table({"algorithm", "setting1", "paper-s1", "setting2", "paper-s2"}, rows);
  std::cout << "\n(74.25 GB total offered over 1200 slots; fair share is "
               "3.71 GB per device.)\n";
  print_elapsed(sw);
  return 0;
}
