// Paper Figure 13 + Table VII: the controlled-experiment substitute — 14
// devices on 4/7/22 Mbps networks with noisy heterogeneous sharing
// (per-device multipliers, AR(1) interference, transient dips), 480 slots
// (2 hours), 10 runs. Reports the Definition 4 distance from the average
// bit rate available over time (with the NE "Optimal" floor) and Table
// VII's per-device download share.
//
// Expected shape: Smart EXP3's distance falls as devices learn and ends
// below Greedy's, which drifts upward as lock-ins go stale; Smart achieves
// a higher median download share with lower spread (paper: 6.89 % / 1.55 vs
// 6.29 % / 2.87).
#include "bench_util.hpp"

#include "metrics/nash.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs(10);  // the paper ran 10 testbed runs
  print_run_banner("Figure 13 + Table VII (controlled static setting)", runs);
  Stopwatch sw;

  const double optimal = metrics::optimal_distance_from_average_rate({4, 7, 22}, 14);

  std::vector<std::vector<std::string>> rows;
  std::vector<std::vector<std::string>> table7;
  std::vector<std::string> csv_names;
  std::vector<std::vector<double>> csv_series;
  for (const auto* policy : {"smart_exp3", "greedy"}) {
    auto cfg = exp::make_setting("controlled", {.policy = policy});
    const auto results = exp::run_many(cfg, runs);
    const auto series = exp::mean_def4_series(results);
    csv_names.push_back(policy);
    csv_series.push_back(series);
    auto window_mean = [&](std::size_t a, std::size_t b) {
      double s = 0.0;
      for (std::size_t i = a; i < b; ++i) s += series[i];
      return s / static_cast<double>(b - a);
    };
    rows.push_back({label_of(policy), exp::sparkline(series, 48),
                    exp::fmt(window_mean(0, 60), 1),
                    exp::fmt(window_mean(420, 480), 1), exp::fmt(optimal, 1)});

    // Table VII: per-device download as % of the total downloaded by all.
    std::vector<double> medians;
    std::vector<double> sds;
    for (const auto& run : results) {
      std::vector<double> share;
      for (const double mb : run.downloads_mb) {
        share.push_back(100.0 * mb / run.total_download_mb);
      }
      medians.push_back(stats::median(share));
      sds.push_back(stats::stddev(share));
    }
    table7.push_back({label_of(policy), exp::fmt(stats::mean(medians)),
                      exp::fmt(stats::mean(sds)),
                      policy == std::string("smart_exp3") ? "6.89 / 1.55"
                                                          : "6.29 / 2.87"});
  }

  exp::print_heading("Figure 13 — distance from average bit rate available (%)");
  exp::print_table({"algorithm", "distance over time", "first hour", "last hour",
                    "optimal floor"},
                   rows);

  exp::print_heading("Table VII — per-device download share (%)");
  exp::print_table({"algorithm", "(avg) median", "(avg) std-dev", "paper (med/sd)"},
                   table7);
  std::cout << "\n(Fair share would be 7.14 % per device; lower std-dev = fairer.)\n";
  maybe_export_series("fig13", csv_names, csv_series);
  print_elapsed(sw);
  return 0;
}
