// Extension bench (beyond the paper's figures): adversarial vs stochastic
// bandits in the congestion game. The paper argues (§II, §VIII) that network
// selection must be modelled *adversarially* because the other devices'
// choices make rewards non-stationary; stochastic-bandit algorithms like
// UCB1 assume i.i.d. rewards per arm. This bench quantifies that argument:
// UCB1 vs the EXP3 family on setting 1, static and under the Fig-8 style
// departure shock.
#include "bench_util.hpp"

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs();
  print_run_banner("extension: stochastic (UCB1) vs adversarial bandits", runs);
  Stopwatch sw;

  const std::vector<std::string> algos = {"ucb1", "exp3", "smart_exp3"};

  exp::print_heading("Static setting 1 — 20 devices");
  std::vector<std::vector<std::string>> rows;
  for (const auto& algo : algos) {
    auto cfg = exp::make_setting("setting1", {.policy = algo});
    const auto results = exp::run_many(cfg, runs);
    const auto series = exp::mean_distance_series(results);
    double tail = 0.0;
    for (std::size_t i = series.size() - 100; i < series.size(); ++i) tail += series[i];
    tail /= 100.0;
    rows.push_back({label_of(algo) == algo ? algo : label_of(algo),
                    exp::fmt(exp::switch_summary(results).mean, 1),
                    exp::fmt(tail, 1),
                    exp::fmt(100.0 * exp::mean_eps_fraction(results), 1),
                    exp::fmt(exp::mean_of_run_median_download_mb(results) / 1024.0, 2)});
  }
  exp::print_table({"algorithm", "switches", "tail distance %", "%slots@eps-eq",
                    "median DL (GB)"},
                   rows);

  exp::print_heading("Departure shock (16 of 20 leave at t=600)");
  rows.clear();
  for (const auto& algo : algos) {
    auto cfg = exp::make_setting("leave", {.policy = algo});
    const auto results = exp::run_many(cfg, runs);
    const auto series = exp::mean_distance_series(results);
    double tail = 0.0;
    for (std::size_t i = series.size() - 200; i < series.size(); ++i) tail += series[i];
    tail /= 200.0;
    rows.push_back({label_of(algo) == algo ? algo : label_of(algo),
                    exp::fmt(tail, 1)});
  }
  exp::print_table({"algorithm", "post-shock tail distance %"}, rows);

  std::cout << "\nExpected: under congestion UCB1's stationarity assumption breaks\n"
               "down completely — every arm's mean drifts with the other devices'\n"
               "choices, optimism never settles, and UCB1 thrashes (switching\n"
               "nearly every slot, worst download, enormous distance). Its low\n"
               "post-shock distance is an artifact of that same thrashing (four\n"
               "round-robining devices spread evenly by accident). This is the\n"
               "paper's case for the adversarial formulation in this problem.\n";
  print_elapsed(sw);
  return 0;
}
