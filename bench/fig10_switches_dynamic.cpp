// Paper Figure 10: average number of network switches incurred by Smart
// EXP3 devices that stay for the whole experiment, across the static and
// dynamic settings, plus the movers of setting 3 (who reset more, hence
// switch more). Paper values: static s1 65, static s2 66, dynamic-join
// (11 persistent devices) 65, dynamic-leave (4 devices) 64, setting 3
// movers 102, setting 3 others 68.
#include "bench_util.hpp"

#include "stats/summary.hpp"

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs();
  print_run_banner("Figure 10 (Smart EXP3 switches of persistent devices)", runs);
  Stopwatch sw;

  std::vector<std::vector<std::string>> rows;

  auto add_row = [&](const std::string& label, const exp::ExperimentConfig& cfg,
                     double paper_value, bool movers_only, bool others_only) {
    const auto results = exp::run_many(cfg, runs);
    std::vector<double> xs;
    for (const auto& run : results) {
      for (std::size_t i = 0; i < run.switches.size(); ++i) {
        if (!run.persistent[i]) continue;
        const bool is_mover = i < 8;  // devices 1..8 move in setting 3
        if (movers_only && !is_mover) continue;
        if (others_only && is_mover) continue;
        xs.push_back(static_cast<double>(run.switches[i]));
      }
    }
    rows.push_back({label, exp::fmt(stats::mean(xs), 1), exp::fmt(stats::stddev(xs), 1),
                    exp::fmt(paper_value, 0)});
  };

  add_row("static setting 1", exp::make_setting("setting1"), 65, false, false);
  add_row("static setting 2", exp::make_setting("setting2"), 66, false, false);
  add_row("dynamic join (11 devices)", exp::make_setting("join"), 65, false, false);
  add_row("dynamic leave (4 devices)", exp::make_setting("leave"), 64, false, false);
  add_row("setting 3 (8 moving devices)", exp::make_setting("mobility"), 102,
          true, false);
  add_row("setting 3 (other 12 devices)", exp::make_setting("mobility"), 68,
          false, true);

  exp::print_heading("Figure 10 — mean switches of devices present throughout");
  exp::print_table({"setting", "mean switches", "sd", "paper"}, rows);
  exp::print_paper_vs_measured("movers vs stationary",
                               "movers switch more (102 vs 68) due to extra resets",
                               rows[4][1] + " vs " + rows[5][1]);
  print_elapsed(sw);
  return 0;
}
