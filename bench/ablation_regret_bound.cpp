// Theorem 3 validation: measured weak regret (paper Definition 1) of Smart
// EXP3 against the best-fixed-network-in-hindsight, compared to the analytic
// bound, on single-device trace environments of growing horizon.
//
// Expected shape: regret stays below the bound everywhere, and the regret
// *rate* R(T)/T falls as T grows — the Hannan-consistency the paper proves.
#include "bench_util.hpp"

#include "metrics/regret.hpp"
#include "stats/summary.hpp"
#include "trace/synth.hpp"

namespace {

using namespace smartexp3;

/// Scaled per-arm gain matrix of a trace pair under the given gain scale.
std::vector<std::vector<double>> scaled_gains(const trace::TracePair& pair,
                                              double scale) {
  std::vector<std::vector<double>> gains(2);
  for (std::size_t t = 0; t < pair.slots(); ++t) {
    gains[0].push_back(std::min(pair.wifi_mbps[t] / scale, 1.0));
    gains[1].push_back(std::min(pair.cellular_mbps[t] / scale, 1.0));
  }
  return gains;
}

}  // namespace

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs(60);
  print_run_banner("Theorem 3 weak-regret bound (horizon sweep)", runs);
  Stopwatch sw;

  std::vector<std::vector<std::string>> rows;
  for (const auto* policy : {"smart_exp3_noreset", "smart_exp3"}) {
    for (const int horizon : {100, 400, 1600}) {
      trace::SynthOptions opts;
      opts.slots = horizon;
      // The same pair the registry's trace4 builds at this length; kept
      // locally for the regret computation's per-arm gain matrix.
      const auto pair = trace::synthetic_pair(4, opts);  // alternating leader
      auto cfg = exp::make_setting("trace4", {.policy = policy, .trace_slots = horizon});

      // The world's gain scale: max rate across both traces (the world
      // computes the same value internally).
      double scale = 0.0;
      for (const auto& net : cfg.networks) {
        for (const double c : net.trace) scale = std::max(scale, c);
      }
      const auto arm_gains = scaled_gains(pair, scale);
      const double mb_per_gain_slot =
          mbps_seconds_to_mb(scale, cfg.world.slot_seconds);

      std::vector<double> regrets;
      std::vector<double> bounds;
      const auto results = exp::run_many(cfg, runs);
      for (const auto& run : results) {
        const double delay_loss_gain = run.switching_cost_mb[0] / mb_per_gain_slot;
        const auto wr = metrics::measure_weak_regret(arm_gains, run.selections[0],
                                                     delay_loss_gain);
        regrets.push_back(wr.regret);
        // Conservative bound inputs: the final (smallest) gamma of the
        // schedule, the empirical largest block, the delay model's rough
        // mean in slots, and the mean observed gain.
        const double gamma = core::gamma_schedule(std::max<long>(1, wr.switches + 2));
        const double mean_gain =
            wr.g_alg / std::max<double>(1.0, static_cast<double>(horizon));
        bounds.push_back(metrics::theorem3_regret_bound(
            wr.g_max, 2, gamma, 0.1, wr.longest_block,
            /*mean_delay_slots=*/5.0 / 15.0, mean_gain, horizon));
      }
      const double regret = stats::mean(regrets);
      const double bound = stats::mean(bounds);
      rows.push_back({label_of(policy), std::to_string(horizon), exp::fmt(regret, 1),
                      exp::fmt(bound, 1), exp::fmt(regret / bound, 3),
                      exp::fmt(regret / horizon, 4)});
    }
  }

  exp::print_heading("Theorem 3 — measured weak regret vs analytic bound "
                     "(gain-slot units, trace pair 4)");
  exp::print_table({"algorithm", "T", "regret", "bound", "ratio", "regret/T"}, rows);
  std::cout << "\nAll ratios must be < 1, and regret/T must fall with T\n"
               "(Hannan consistency). The bound uses the schedule's final\n"
               "gamma and the empirically largest block as l.\n";
  print_elapsed(sw);
  return 0;
}
