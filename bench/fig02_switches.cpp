// Paper Figure 2: average number of network switches per device (with
// standard deviation) for each algorithm, in static settings 1 and 2.
//
// Expected shape: EXP3 and Full Information switch hundreds of times; the
// block-based algorithms cut that by ~80 %; Greedy barely switches; Smart
// EXP3 sits between the block variants and EXP3 because resets re-explore.
#include "bench_util.hpp"

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs();
  print_run_banner("Figure 2 (network switches, settings 1 & 2)", runs);
  Stopwatch sw;

  struct PaperRow {
    const char* policy;
    double s1;
    double s2;
  };
  const std::vector<PaperRow> paper = {
      {"exp3", 641, 751},          {"block_exp3", 47, 41},
      {"hybrid_block_exp3", 31, 29}, {"smart_exp3_noreset", 32, 30},
      {"smart_exp3", 65, 66},      {"greedy", 3, 11},
      {"full_information", 586, 771}};

  std::vector<std::vector<std::string>> rows;
  for (const auto& p : paper) {
    exp::SwitchSummary s1;
    exp::SwitchSummary s2;
    {
      auto cfg = exp::make_setting("setting1", {.policy = p.policy});
      s1 = exp::switch_summary(exp::run_many(cfg, runs));
    }
    {
      auto cfg = exp::make_setting("setting2", {.policy = p.policy});
      s2 = exp::switch_summary(exp::run_many(cfg, runs));
    }
    rows.push_back({label_of(p.policy), exp::fmt(s1.mean, 1),
                    exp::fmt(s1.stddev, 1), exp::fmt(p.s1, 0), exp::fmt(s2.mean, 1),
                    exp::fmt(s2.stddev, 1), exp::fmt(p.s2, 0)});
  }

  exp::print_heading("Figure 2 — mean network switches per device");
  exp::print_table({"algorithm", "setting1", "sd", "paper-s1", "setting2", "sd",
                    "paper-s2"},
                   rows);
  std::cout << "\n(Centralized and Fixed Random incur zero switches by "
               "construction, as in the paper.)\n";
  print_elapsed(sw);
  return 0;
}
