// Paper Figure 3: percentage of runs that reach a stable state (Definition
// 2) and whether that state is a Nash equilibrium, for the three blocking
// variants (EXP3 and Full Information never stabilize; Smart EXP3 with
// resets is excluded by definition).
//
// Expected shape: Block EXP3 stabilizes in a minority of runs and rarely at
// NE; the greedy policy (Hybrid) raises the rate sharply; the switch-back
// mechanism (Smart w/o Reset) pins nearly 100 % of runs at NE.
#include "bench_util.hpp"

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs();
  print_run_banner("Figure 3 (stable-state rates)", runs);
  Stopwatch sw;

  const std::vector<std::string> algos = {"block_exp3", "hybrid_block_exp3",
                                          "smart_exp3_noreset"};

  std::vector<std::vector<std::string>> rows;
  for (const auto& algo : algos) {
    for (const int setting : {1, 2}) {
      auto cfg = exp::make_setting(setting == 1 ? "setting1" : "setting2",
                                   {.policy = algo});
      cfg.recorder.track_stability = true;
      const auto s = exp::stability_summary(exp::run_many(cfg, runs));
      rows.push_back({label_of(algo), std::to_string(setting),
                      exp::fmt(100.0 * s.stable_fraction, 1),
                      exp::fmt(100.0 * s.stable_at_nash_fraction, 1),
                      exp::fmt(100.0 * (s.stable_fraction - s.stable_at_nash_fraction), 1)});
    }
  }

  exp::print_heading("Figure 3 — % runs stable / stable at NE / stable elsewhere");
  exp::print_table({"algorithm", "setting", "%stable", "%at-NE", "%other"}, rows);
  exp::print_paper_vs_measured(
      "Smart EXP3 w/o Reset stable at NE",
      "99.4 % (setting 1), 100 % (setting 2)",
      rows[4][3] + " % / " + rows[5][3] + " %");
  exp::print_paper_vs_measured("Block EXP3 stabilizes", "~40 % of runs, rarely at NE",
                               rows[0][2] + " % (s1), " + rows[1][2] + " % (s2)");
  print_elapsed(sw);
  return 0;
}
