// Paper Figure 11: robustness against "greedy" devices. Three scenarios on
// setting-1 networks: (1) 19 Smart + 1 Greedy, (2) 10 + 10, (3) 1 Smart +
// 19 Greedy. Distance to NE is tracked separately for the Smart and the
// Greedy populations.
//
// Expected shape: Greedy does fine while rare (scenarios 1-2) but collapses
// when greedy devices dominate (scenario 3); Smart EXP3 performs well in
// all three mixes.
#include "bench_util.hpp"

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs();
  print_run_banner("Figure 11 (coexistence with Greedy devices)", runs);
  Stopwatch sw;

  struct Scenario {
    const char* label;
    int n_smart;
  };
  const std::vector<Scenario> scenarios = {
      {"scenario 1: 19 Smart + 1 Greedy", 19},
      {"scenario 2: 10 Smart + 10 Greedy", 10},
      {"scenario 3: 1 Smart + 19 Greedy", 1}};

  for (const auto& sc : scenarios) {
    auto cfg = exp::make_setting("greedy_mix", {.n_smart = sc.n_smart});
    // Group 0 = Smart devices (ids 1..n_smart), group 1 = Greedy devices.
    std::vector<DeviceId> smart_ids;
    std::vector<DeviceId> greedy_ids;
    for (const auto& d : cfg.devices) {
      (d.policy_name == "smart_exp3" ? smart_ids : greedy_ids).push_back(d.id);
    }
    cfg.recorder.groups = {smart_ids, greedy_ids};
    const auto results = exp::run_many(cfg, runs);

    exp::print_heading(sc.label);
    std::vector<std::vector<std::string>> rows;
    const std::vector<std::string> group_labels = {"Smart EXP3 devices",
                                                   "Greedy devices"};
    for (std::size_t g = 0; g < 2; ++g) {
      const auto series = exp::mean_distance_series(results, g);
      if (series.empty()) continue;
      double tail = 0.0;
      for (std::size_t i = series.size() - 200; i < series.size(); ++i) tail += series[i];
      tail /= 200.0;
      rows.push_back({group_labels[g], exp::sparkline(series, 44), exp::fmt(tail, 1)});
    }
    exp::print_table({"population", "distance over time", "tail%"}, rows);
  }

  exp::print_paper_vs_measured(
      "Greedy under greedy-majority (scenario 3)",
      "yields poor performance; Smart EXP3 robust in all scenarios",
      "compare tails above");
  print_elapsed(sw);
  return 0;
}
