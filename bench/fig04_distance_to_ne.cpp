// Paper Figures 4a/4b: average distance to Nash equilibrium (Definition 3)
// over time for all nine algorithms in static settings 1 and 2, plus the
// fraction of time Smart EXP3 spends at NE / at epsilon-equilibrium.
//
// Expected shape: Centralized pinned at 0; Smart EXP3 (w/o Reset) descends
// to ~0 and stays; Smart EXP3 shows reset spikes but returns; Greedy flat at
// a mediocre level; EXP3 / Full Information / Fixed Random stay high
// (~40 % in setting 2).
#include "bench_util.hpp"

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs();
  print_run_banner("Figure 4 (distance to NE over time)", runs);
  Stopwatch sw;

  for (const int setting : {1, 2}) {
    exp::print_heading("Figure 4" + std::string(setting == 1 ? "a" : "b") +
                       " — mean distance to NE (%), sparkline over 1200 slots");
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> csv_names;
    std::vector<std::vector<double>> csv_series;
    for (const auto& algo : all_algorithms()) {
      auto cfg = exp::make_setting(setting == 1 ? "setting1" : "setting2",
                                   {.policy = algo});
      const auto results = exp::run_many(cfg, runs);
      const auto series = exp::mean_distance_series(results);
      csv_names.push_back(algo);
      csv_series.push_back(series);
      const double tail = [&] {
        double s = 0.0;
        for (std::size_t i = series.size() - 100; i < series.size(); ++i) s += series[i];
        return s / 100.0;
      }();
      rows.push_back({label_of(algo), exp::sparkline(series, 48), exp::fmt(tail, 1),
                      exp::fmt(100.0 * exp::mean_at_nash_fraction(results), 1),
                      exp::fmt(100.0 * exp::mean_eps_fraction(results), 1)});

      if (algo == "smart_exp3") {
        exp::print_series_csv("fig4" + std::string(setting == 1 ? "a" : "b") +
                                  "_smart_exp3",
                              series, /*stride=*/40);
      }
    }
    exp::print_table({"algorithm", "distance over time", "tail%", "%slots@NE",
                      "%slots@eps-eq"},
                     rows);
    maybe_export_series(setting == 1 ? "fig04a" : "fig04b", csv_names, csv_series);
  }

  exp::print_paper_vs_measured("Smart EXP3 time at NE",
                               "62.77 % (setting 1), 74.30 % (setting 2)",
                               "see %slots@NE column above");
  exp::print_paper_vs_measured(
      "EXP3 / Full Info / Fixed Random in setting 2", "hold ~40 % distance",
      "see tail% column above");
  print_elapsed(sw);
  return 0;
}
