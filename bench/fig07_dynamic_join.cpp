// Paper Figure 7: dynamic setting 1 — 9 devices join at slot 400 and leave
// after slot 799. Average distance to NE over time for EXP3, Smart EXP3,
// Smart EXP3 w/o Reset and Greedy.
//
// Expected shape: the join spikes every algorithm's distance; only the
// Smart variants re-converge toward equilibrium while the newcomers are
// present and again after they leave; Greedy and EXP3 stay off.
#include "bench_util.hpp"

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs();
  print_run_banner("Figure 7 (9 devices join at t=400, leave after t=800)", runs);
  Stopwatch sw;

  const std::vector<std::string> algos = {"exp3", "smart_exp3_noreset", "smart_exp3",
                                          "greedy"};
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> csv_names;
  std::vector<std::vector<double>> csv_series;
  for (const auto& algo : algos) {
    auto cfg = exp::make_setting("join", {.policy = algo});
    // Device-parallel slot phases inside each world; trajectory unchanged.
    cfg.world.threads = exp::world_threads();
    const auto results = exp::run_many(cfg, runs);
    const auto series = exp::mean_distance_series(results);
    csv_names.push_back(algo);
    csv_series.push_back(series);
    auto window_mean = [&](std::size_t a, std::size_t b) {
      double s = 0.0;
      for (std::size_t i = a; i < b; ++i) s += series[i];
      return s / static_cast<double>(b - a);
    };
    rows.push_back({label_of(algo), exp::sparkline(series, 48),
                    exp::fmt(window_mean(300, 400), 1),
                    exp::fmt(window_mean(400, 450), 1),
                    exp::fmt(window_mean(740, 800), 1),
                    exp::fmt(window_mean(1100, 1200), 1)});
    if (algo == "smart_exp3") {
      exp::print_series_csv("fig7_smart_exp3", series, /*stride=*/40);
    }
  }
  exp::print_heading("Figure 7 — mean distance to NE (%), windows around the events");
  exp::print_table({"algorithm", "distance over time", "pre-join", "join spike",
                    "pre-leave", "tail"},
                   rows);
  exp::print_paper_vs_measured(
      "who adapts", "only Smart EXP3 (w/ and w/o reset) re-converge after the join",
      "compare 'join spike' vs 'pre-leave' columns");
  maybe_export_series("fig07", csv_names, csv_series);
  print_elapsed(sw);
  return 0;
}
