// Feature ablation of Smart EXP3 (the design-choice ladder of paper §III):
// starting from plain adaptive blocking and toggling each mechanism —
// initial exploration, greedy choices, switch-back, minimal reset — measure
// switches, equilibrium time, stabilization and download on setting 1.
//
// Expected shape (paper §VI-A): greedy+exploration speed up stabilization
// dramatically; switch-back pins runs at NE; reset adds switches but is the
// price of adaptivity (its value shows in fig08_dynamic_leave, not here).
#include "bench_util.hpp"

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs();
  print_run_banner("Smart EXP3 feature ablation (setting 1)", runs);
  Stopwatch sw;

  struct Variant {
    const char* label;
    bool explore, greedy, switch_back, reset;
  };
  const std::vector<Variant> variants = {
      {"blocks only (Block EXP3)", false, false, false, false},
      {"+ exploration", true, false, false, false},
      {"+ greedy (Hybrid Block EXP3)", true, true, false, false},
      {"+ switch-back (Smart w/o Reset)", true, true, true, false},
      {"+ reset (full Smart EXP3)", true, true, true, true},
      {"full minus greedy", true, false, true, true},
      {"full minus exploration", false, true, true, true},
  };

  std::vector<std::vector<std::string>> rows;
  for (const auto& v : variants) {
    // The policy *name* pins the reset toggle (the factory guarantees
    // "smart_exp3" resets and "smart_exp3_noreset" does not); the remaining
    // toggles flow through the tunables.
    auto cfg = exp::make_setting(
        "setting1", {.policy = v.reset ? "smart_exp3" : "smart_exp3_noreset"});
    cfg.smart.enable_explore_first = v.explore;
    cfg.smart.enable_greedy = v.greedy;
    cfg.smart.enable_switch_back = v.switch_back;
    cfg.recorder.track_stability = true;
    const auto results = exp::run_many(cfg, runs);
    const auto switches = exp::switch_summary(results);
    const auto stability = exp::stability_summary(results);
    rows.push_back(
        {v.label, exp::fmt(switches.mean, 1),
         exp::fmt(100.0 * exp::mean_eps_fraction(results), 1),
         exp::fmt(100.0 * stability.stable_at_nash_fraction, 1),
         stability.median_stable_slot < 0 ? "-" : exp::fmt(stability.median_stable_slot, 0),
         exp::fmt(exp::mean_of_run_median_download_mb(results) / 1024.0, 2)});
  }

  exp::print_heading("Feature ablation — setting 1, all mechanisms toggled");
  exp::print_table({"variant", "switches", "%time@eps-eq", "%stable@NE",
                    "median stable slot", "median DL (GB)"},
                   rows);
  std::cout << "\n(The reset variant cannot 'stabilize' by Definition 2 — resets\n"
               " re-open exploration — so read its quality from %time@eps-eq.)\n";
  print_elapsed(sw);
  return 0;
}
