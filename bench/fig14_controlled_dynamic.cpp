// Paper Figure 14: the controlled dynamic setting — 9 of the 14 devices
// leave after slot 239 (1 hour in), freeing resources in the noisy
// testbed stand-in.
//
// Expected shape: both algorithms behave as in the static setting for the
// first hour; after the departure, Smart EXP3's continuous exploration
// discovers the freed capacity and its Definition 4 distance drops, while
// Greedy stays stuck high.
#include "bench_util.hpp"

#include "metrics/nash.hpp"

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs(10);
  print_run_banner("Figure 14 (controlled dynamic: 9 devices leave at t=240)", runs);
  Stopwatch sw;

  std::vector<std::vector<std::string>> rows;
  double tails[2] = {0, 0};
  int p = 0;
  for (const auto* policy : {"smart_exp3", "greedy"}) {
    auto cfg = exp::make_setting("controlled_dynamic", {.policy = policy});
    const auto results = exp::run_many(cfg, runs);
    const auto series = exp::mean_def4_series(results);
    auto window_mean = [&](std::size_t a, std::size_t b) {
      double s = 0.0;
      for (std::size_t i = a; i < b; ++i) s += series[i];
      return s / static_cast<double>(b - a);
    };
    tails[p] = window_mean(400, 480);
    rows.push_back({label_of(policy), exp::sparkline(series, 48),
                    exp::fmt(window_mean(180, 240), 1),
                    exp::fmt(window_mean(240, 280), 1),
                    exp::fmt(window_mean(400, 480), 1)});
    exp::print_series_csv(std::string("fig14_") + policy, series, /*stride=*/20);
    ++p;
  }

  exp::print_heading("Figure 14 — distance from average bit rate available (%)");
  exp::print_table({"algorithm", "distance over time", "pre-leave", "leave spike",
                    "tail"},
                   rows);
  exp::print_paper_vs_measured(
      "post-departure adaptation", "Smart EXP3 recovers; Greedy maintains a high "
                                   "distance",
      "smart tail=" + exp::fmt(tails[0], 1) + " % vs greedy tail=" +
          exp::fmt(tails[1], 1) + " %");
  print_elapsed(sw);
  return 0;
}
