// Paper Figure 5 (+ the "unutilized resources" paragraph of §VI-A):
// fairness measured as the per-run standard deviation of per-device
// cumulative downloads (lower = fairer), and the mean capacity left unused.
//
// Expected shape: EXP3, Smart EXP3 and Full Information are the fairest;
// Greedy is dramatically unfair in setting 1 (paper: std-dev ~1155 MB, and
// ~8 GB of the 4 Mbps network's capacity goes unused on average); Smart
// EXP3's std-dev is ~80 % (s1) / ~55 % (s2) below Greedy's.
#include "bench_util.hpp"

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs();
  print_run_banner("Figure 5 (fairness) + unutilized resources", runs);
  Stopwatch sw;

  struct PaperRow {
    const char* policy;
    double s1;
    double s2;
  };
  const std::vector<PaperRow> paper = {
      {"exp3", 132, 80},           {"block_exp3", 453, 383},
      {"hybrid_block_exp3", 595, 240}, {"smart_exp3_noreset", 267, 217},
      {"smart_exp3", 193, 90},     {"greedy", 1155, 444},
      {"full_information", 54, 80},   {"centralized", 307, 270},
      {"fixed_random", 650, 650}};

  std::vector<std::vector<std::string>> rows;
  double greedy_sd[2] = {0, 0};
  double smart_sd[2] = {0, 0};
  double greedy_unused_gb = 0.0;
  for (const auto& p : paper) {
    double sd[2] = {0, 0};
    for (const int setting : {1, 2}) {
      auto cfg = exp::make_setting(setting == 1 ? "setting1" : "setting2",
                                   {.policy = p.policy});
      const auto results = exp::run_many(cfg, runs);
      sd[setting - 1] = exp::mean_of_run_download_stddev_mb(results);
      if (setting == 1 && std::string(p.policy) == "greedy") {
        greedy_unused_gb = exp::mean_unused_mb(results) / 1024.0;
      }
    }
    if (std::string(p.policy) == "greedy") {
      greedy_sd[0] = sd[0];
      greedy_sd[1] = sd[1];
    }
    if (std::string(p.policy) == "smart_exp3") {
      smart_sd[0] = sd[0];
      smart_sd[1] = sd[1];
    }
    rows.push_back({label_of(p.policy), exp::fmt(sd[0], 0), exp::fmt(p.s1, 0),
                    exp::fmt(sd[1], 0), exp::fmt(p.s2, 0)});
  }

  exp::print_heading("Figure 5 — std-dev of per-device cumulative download (MB)");
  exp::print_table({"algorithm", "setting1", "paper-s1", "setting2", "paper-s2"}, rows);

  exp::print_heading("Unutilized resources (§VI-A)");
  exp::print_paper_vs_measured("Greedy unused capacity, setting 1", "~8 GB of 74.25 GB",
                               exp::fmt(greedy_unused_gb) + " GB");
  if (greedy_sd[0] > 0 && greedy_sd[1] > 0) {
    exp::print_paper_vs_measured(
        "Smart EXP3 std-dev vs Greedy", "80 % lower (s1), 55 % lower (s2)",
        exp::fmt(100.0 * (1.0 - smart_sd[0] / greedy_sd[0]), 0) + " % / " +
            exp::fmt(100.0 * (1.0 - smart_sd[1] / greedy_sd[1]), 0) + " % lower");
  }
  print_elapsed(sw);
  return 0;
}
