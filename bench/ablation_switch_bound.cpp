// Theorem 2 validation: the expected number of network switches of Smart
// EXP3 (without reset; tau = T, t_d = 1) is bounded by
// 3 k log(T + 1) / log(1 + beta). This bench sweeps beta, k and T in the
// full 20-device congestion game and reports measured switches against the
// analytic bound — the ratio must stay below 1, and the trends the paper
// derives (more networks => more switches; larger beta => fewer) must show.
#include "bench_util.hpp"

#include <cmath>

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs(30);
  print_run_banner("Theorem 2 switch bound (beta / k / T sweep)", runs);
  Stopwatch sw;

  struct Case {
    double beta;
    int k;
    int horizon;
  };
  const std::vector<Case> cases = {
      {0.05, 3, 1200}, {0.1, 3, 1200}, {0.3, 3, 1200}, {0.5, 3, 1200},
      {1.0, 3, 1200},  {0.1, 5, 1200}, {0.1, 7, 1200}, {0.1, 3, 600},
      {0.1, 3, 2400}};

  std::vector<std::vector<std::string>> rows;
  for (const auto& c : cases) {
    auto cfg = exp::make_setting("scalability", {.policy = "smart_exp3_noreset",
                                                 .devices = 20,
                                                 .horizon = c.horizon,
                                                 .networks = c.k});
    cfg.smart.beta = c.beta;
    cfg.recorder.track_distance = false;
    const auto s = exp::switch_summary(exp::run_many(cfg, runs));
    const double bound = 3.0 * c.k * std::log(static_cast<double>(c.horizon) + 1.0) /
                         std::log(1.0 + c.beta);
    rows.push_back({exp::fmt(c.beta, 2), std::to_string(c.k),
                    std::to_string(c.horizon), exp::fmt(s.mean, 1),
                    exp::fmt(bound, 1), exp::fmt(s.mean / bound, 3)});
  }

  exp::print_heading("Theorem 2 — measured switches vs analytic bound");
  exp::print_table({"beta", "k", "T", "mean switches", "bound", "ratio"}, rows);
  std::cout << "\nAll ratios must be < 1. Trends to check (paper §IV): the bound\n"
               "and the measurements fall as beta grows, rise with k, and grow\n"
               "only logarithmically with T.\n";
  print_elapsed(sw);
  return 0;
}
