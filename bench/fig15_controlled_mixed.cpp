// Paper Figure 15: the controlled mixed setting — 7 devices run Smart EXP3
// and 7 run Greedy in the noisy testbed stand-in.
//
// Expected shape: the Smart EXP3 population ends with a lower Definition 4
// distance (hence higher gains) than the Greedy population — in the noisy
// real world, greedy devices get stuck on networks whose quality drifted
// (unlike in the clean simulation, where a 50 % greedy mix still did fine).
#include "bench_util.hpp"

#include "stats/summary.hpp"

int main() {
  using namespace smartexp3;
  using namespace smartexp3::bench;

  const int runs = exp::repro_runs(10);
  print_run_banner("Figure 15 (controlled mixed: 7 Smart + 7 Greedy)", runs);
  Stopwatch sw;

  std::vector<std::string> policies(14, "greedy");
  std::vector<DeviceId> smart_ids;
  std::vector<DeviceId> greedy_ids;
  for (int i = 0; i < 7; ++i) policies[static_cast<std::size_t>(i)] = "smart_exp3";
  auto cfg = exp::make_setting("controlled", {.policy_mix = policies});
  for (const auto& d : cfg.devices) {
    (d.policy_name == "smart_exp3" ? smart_ids : greedy_ids).push_back(d.id);
  }
  cfg.recorder.groups = {smart_ids, greedy_ids};

  const auto results = exp::run_many(cfg, runs);

  std::vector<std::vector<std::string>> rows;
  const std::vector<std::string> labels = {"Smart EXP3 devices", "Greedy devices"};
  double tails[2] = {0, 0};
  for (std::size_t g = 0; g < 2; ++g) {
    stats::SeriesAccumulator acc;
    for (const auto& run : results) {
      if (g < run.group_def4.size()) acc.add(run.group_def4[g]);
    }
    const auto series = acc.mean();
    auto window_mean = [&](std::size_t a, std::size_t b) {
      double s = 0.0;
      for (std::size_t i = a; i < b; ++i) s += series[i];
      return s / static_cast<double>(b - a);
    };
    tails[g] = window_mean(400, 480);
    rows.push_back({labels[g], exp::sparkline(series, 48),
                    exp::fmt(window_mean(0, 60), 1), exp::fmt(tails[g], 1)});
  }

  exp::print_heading(
      "Figure 15 — distance from average bit rate available (%), per population");
  exp::print_table({"population", "distance over time", "first hour", "tail"}, rows);
  exp::print_paper_vs_measured(
      "Smart vs Greedy population", "Smart devices end with the lower distance",
      "smart=" + exp::fmt(tails[0], 1) + " % vs greedy=" + exp::fmt(tails[1], 1) + " %");
  print_elapsed(sw);
  return 0;
}
